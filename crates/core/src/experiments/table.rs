//! The rendered-result type every experiment produces.

use super::engine::CellFailure;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rendered experiment result: one table or figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpTable {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Cells that did not complete; the table is partial when
    /// non-empty. Populated only by the suite runner.
    pub failures: Vec<CellFailure>,
}

impl ExpTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> ExpTable {
        ExpTable {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.columns.len());
        self.rows.push(row);
    }

    /// Finds the value at (`row` matching first column, `column`).
    pub fn get(&self, first_col: &str, column: &str) -> Option<&str> {
        let ci = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r[0] == first_col)
            .map(|r| r[ci].as_str())
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        for row in &self.rows {
            line(f, row)?;
        }
        if !self.failures.is_empty() {
            writeln!(f, "!! {} cell(s) failed:", self.failures.len())?;
            for fail in &self.failures {
                writeln!(f, "!!   {} [{}]: {}", fail.label, fail.kind, fail.message)?;
            }
        }
        Ok(())
    }
}

/// Formats a float the way every table column expects.
pub(crate) fn fmt_f(v: f64) -> String {
    format!("{v:.2}")
}
