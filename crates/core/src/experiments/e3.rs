//! **E3** (§1/§4.2): the ANVIL DMA blind spot — PMU-based defense vs
//! MC-counter-based defense against CPU and DMA hammers.

use super::common::{accesses, run_attack, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::taxonomy::DefenseKind;

pub struct E3;

impl Experiment for E3 {
    fn id(&self) -> &'static str {
        "E3"
    }

    fn title(&self) -> &'static str {
        "DMA blind spot: xdom flips under CPU vs DMA attack"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["defense", "cpu attack", "dma attack", "defense refreshes"]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let n = accesses(ctx.quick);
        [
            DefenseKind::None,
            DefenseKind::Anvil { miss_threshold: 2 },
            DefenseKind::VictimRefreshInstr,
        ]
        .into_iter()
        .map(|defense| {
            Cell::new(defense.name(), move || {
                let cpu = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), ctx)?;
                let dma = run_attack(defense, FAST_MAC, |s| s.arm_dma(n), ctx)?;
                Ok(vec![vec![
                    defense.name().to_string(),
                    cpu.cross_flips_against(2).to_string(),
                    dma.cross_flips_against(2).to_string(),
                    (cpu.overhead.refresh_ops
                        + cpu.overhead.convoluted_refreshes
                        + dma.overhead.refresh_ops
                        + dma.overhead.convoluted_refreshes)
                        .to_string(),
                ]])
            })
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::e3_dma_blindspot;

    #[test]
    fn e3_blindspot_shape() {
        let t = e3_dma_blindspot(true).unwrap();
        let get = |d: &str, c: &str| -> u64 { t.get(d, c).unwrap().parse().unwrap() };
        assert!(get("none", "cpu attack") > 0);
        assert!(get("none", "dma attack") > 0);
        // ANVIL stops the CPU attack but not DMA.
        assert_eq!(get("anvil", "cpu attack"), 0, "{t}");
        assert!(get("anvil", "dma attack") > 0, "{t}");
        // The precise-ACT defense stops both.
        assert_eq!(get("victim-refresh/instr", "cpu attack"), 0, "{t}");
        assert_eq!(get("victim-refresh/instr", "dma attack"), 0, "{t}");
    }
}
