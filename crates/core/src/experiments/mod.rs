//! The evaluation suite: every table and figure of the reproduction.
//!
//! The paper defers quantitative evaluation to future work (§4); this
//! module *is* that evaluation, per the experiment index in DESIGN.md.
//! Each experiment lives in its own module (`t1` … `e11`), implements
//! [`Experiment`], and declares its sweep as independent scenario
//! [`Cell`]s; the [`engine`] runs cells on a worker pool and reduces
//! them deterministically, so `--jobs 8` output is byte-identical to
//! serial output.
//!
//! All experiments run on the compressed "fast" machine scale
//! (medium geometry, compressed timing, scaled-down MACs) so the whole
//! suite completes in seconds; EXPERIMENTS.md documents the scaling
//! and why it preserves each claim's *shape*. `quick` mode further
//! shrinks access counts for use in unit tests.

pub mod engine;
pub mod table;

mod common;
mod e1;
mod e10;
mod e11;
mod e2;
mod e3;
mod e4;
mod e5;
mod e6;
mod e7;
mod e8;
mod e9;
mod f1;
mod f2;
mod f3;
mod t1;

pub use common::FAST_MAC;
pub use engine::{
    run_budgeted, run_one, run_suite, run_suite_traced, silent, Cell, CellCtx, CellFailure,
    CellProgress, CellRows, FailureKind, FailureProgress, RunOptions, StepBudgetScope, SuiteReport,
};
pub use table::ExpTable;

use hammertime_common::Result;

/// One table/figure generator: a declarative sweep of [`Cell`]s plus
/// the reduction that assembles their results into an [`ExpTable`].
pub trait Experiment: Sync {
    /// Experiment id (e.g. `"E2"`), unique within the registry.
    fn id(&self) -> &'static str;

    /// Human-readable table title.
    fn title(&self) -> &'static str;

    /// Column headers of the produced table.
    fn columns(&self) -> &'static [&'static str];

    /// The sweep: self-contained cells the engine may run in any
    /// order on any worker. Declaration order defines row order.
    fn cells(&self, ctx: &CellCtx) -> Vec<Cell>;

    /// Assembles per-cell row fragments (in declaration order) into
    /// the final table. The default concatenates them.
    fn reduce(&self, quick: bool, results: Vec<CellRows>) -> Result<ExpTable> {
        let _ = quick;
        let mut t = ExpTable::new(self.id(), self.title(), self.columns());
        for rows in results {
            for row in rows {
                t.push(row);
            }
        }
        Ok(t)
    }
}

/// Every experiment, in canonical (report) order.
pub fn registry() -> Vec<&'static dyn Experiment> {
    vec![
        &t1::T1,
        &f1::F1,
        &f2::F2,
        &f3::F3,
        &e1::E1,
        &e2::E2,
        &e3::E3,
        &e4::E4,
        &e5::E5,
        &e6::E6,
        &e7::E7,
        &e8::E8,
        &e9::E9,
        &e10::E10,
        &e11::E11,
    ]
}

/// Convenience: run the entire suite (serially) and return the full
/// report, tables in experiment order.
pub fn run_all(quick: bool) -> Result<SuiteReport> {
    run_all_with(&RunOptions::new(quick))
}

/// Runs the registry under the given options (parallelism, filter,
/// fault plan, step budget).
pub fn run_all_with(opts: &RunOptions) -> Result<SuiteReport> {
    run_suite(&registry(), opts, &silent)
}

/// Runs the registry under the given options while recording a
/// cycle-stamped event trace of every machine the cells build; the
/// trace, like the tables, is byte-identical for any worker count.
pub fn run_all_traced(
    opts: &RunOptions,
) -> Result<(SuiteReport, Vec<hammertime_telemetry::TraceRecord>)> {
    run_suite_traced(&registry(), opts, &silent)
}

/// **T1** (paper Table 1): the primitive × defense matrix.
pub fn t1_defense_matrix(quick: bool) -> Result<ExpTable> {
    run_one(&t1::T1, quick)
}

/// **F1** (paper Fig. 1): row-buffer semantics.
pub fn f1_rowbuffer() -> Result<ExpTable> {
    run_one(&f1::F1, false)
}

/// **F2** (paper Fig. 2): interleaving schemes.
pub fn f2_interleaving(quick: bool) -> Result<ExpTable> {
    run_one(&f2::F2, quick)
}

/// **F3**: defense efficacy and overhead on degraded hardware, swept
/// over fault-plan intensity.
pub fn f3_degraded(quick: bool) -> Result<ExpTable> {
    run_one(&f3::F3, quick)
}

/// **E1** (§3): the worsening-Rowhammer generational trend.
pub fn e1_generations(quick: bool) -> Result<ExpTable> {
    run_one(&e1::E1, quick)
}

/// **E2** (§3): TRRespass vs a fixed-size in-DRAM tracker.
pub fn e2_trr_bypass(quick: bool) -> Result<ExpTable> {
    run_one(&e2::E2, quick)
}

/// **E3** (§1/§4.2): the ANVIL DMA blind spot.
pub fn e3_dma_blindspot(quick: bool) -> Result<ExpTable> {
    run_one(&e3::E3, quick)
}

/// **E4** (§4.2): frequency-centric defenses and counter evasion.
pub fn e4_frequency(quick: bool) -> Result<ExpTable> {
    run_one(&e4::E4, quick)
}

/// **E5** (§4.3): refresh mechanisms — effectiveness and cost.
pub fn e5_refresh(quick: bool) -> Result<ExpTable> {
    run_one(&e5::E5, quick)
}

/// **E6** (§3): tracker SRAM scaling vs flat software cost.
pub fn e6_scaling() -> Result<ExpTable> {
    run_one(&e6::E6, false)
}

/// **E7** (§2.1/§4.1): subarray-boundary and remap inference.
pub fn e7_inference(quick: bool) -> Result<ExpTable> {
    run_one(&e7::E7, quick)
}

/// **E8** (§4.4): enclave memory under attack.
pub fn e8_enclave(quick: bool) -> Result<ExpTable> {
    run_one(&e8::E8, quick)
}

/// **E9**: benign overhead per defense (no attack).
pub fn e9_overhead(quick: bool) -> Result<ExpTable> {
    run_one(&e9::E9, quick)
}

/// **E10** (ablation): SEC-DED ECC visibility of hammer damage.
pub fn e10_ecc(quick: bool) -> Result<ExpTable> {
    run_one(&e10::E10, quick)
}

/// **E11** (ablation): row-buffer page policy vs hammer rate.
pub fn e11_page_policy(quick: bool) -> Result<ExpTable> {
    run_one(&e11::E11, quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_canonical() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            [
                "T1", "F1", "F2", "F3", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                "E10", "E11"
            ]
        );
    }

    #[test]
    fn filter_is_case_insensitive() {
        let opts = RunOptions::new(true).filter(["e6", "F1"]);
        let report = run_all_with(&opts).unwrap();
        let ids: Vec<&str> = report.tables.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, ["F1", "E6"]);
    }
}
