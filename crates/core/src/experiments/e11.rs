//! **E11** (ablation; DESIGN.md design-choice list): row-buffer policy
//! vs hammer rate — closed-page policies tax every access with a full
//! row cycle but also slow the attacker's ACT stream.

use super::common::{accesses, run_benign_with, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;

pub struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "E11"
    }

    fn title(&self) -> &'static str {
        "Page-policy ablation: closed-page taxes locality without stopping the hammer"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "policy",
            "attack flips",
            "attack acts",
            "benign ops/kcyc",
            "benign mean latency",
            "benign row hits",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        use hammertime_memctrl::controller::PagePolicy;
        let ctx = *ctx;
        let quick = ctx.quick;
        let n = accesses(quick);
        [PagePolicy::Open, PagePolicy::Closed]
            .into_iter()
            .map(|policy| {
                Cell::new(format!("{policy:?}"), move || {
                    // Scoped so the attack machine is torn down before
                    // the benign one is built: device lifetimes in a
                    // cell's trace must not overlap (replay rebuilds
                    // one device at a time; see hammertime_dram's
                    // replay module).
                    let attack = {
                        let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
                        cfg.page_policy = policy;
                        cfg.faults = ctx.faults;
                        let mut s = CloudScenario::build_sized(cfg, 4)?;
                        s.arm_double_sided(n)?;
                        s.run_windows(if quick { 40 } else { 150 });
                        s.report()
                    };

                    let mut cfg = MachineConfig::fast(DefenseKind::None, FAST_MAC);
                    cfg.page_policy = policy;
                    cfg.faults = ctx.faults;
                    let benign = run_benign_with(cfg, quick)?;
                    Ok(vec![vec![
                        format!("{policy:?}"),
                        attack.flips_total.to_string(),
                        attack.dram.acts.to_string(),
                        fmt_f(benign.throughput()),
                        fmt_f(benign.mc.mean_latency()),
                        benign.mc.row_hits.to_string(),
                    ]])
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::e11_page_policy;

    #[test]
    fn e11_closed_page_is_not_a_defense() {
        let t = e11_page_policy(true).unwrap();
        let get = |row: usize, col: &str| -> f64 {
            let ci = t.columns.iter().position(|c| c == col).unwrap();
            t.rows[row][ci].parse().unwrap()
        };
        // Closed-page destroys benign row-buffer locality...
        assert!(get(1, "benign row hits") < get(0, "benign row hits") / 10.0);
        assert!(get(1, "benign mean latency") > get(0, "benign mean latency"));
        // ...while the flush-based hammer flips either way.
        assert!(get(0, "attack flips") > 0.0);
        assert!(get(1, "attack flips") > 0.0);
    }
}
