//! The experiment engine: declarative scenario cells and the
//! deterministic parallel runner.
//!
//! Every experiment declares its sweep as a list of [`Cell`]s — one
//! label plus one closure that builds, seeds, and runs its own
//! [`crate::machine::Machine`] and returns the row fragments it
//! contributes. Cells share no state, so the engine may run them on
//! any number of worker threads: results land in slots indexed by
//! declaration order and each experiment's `reduce` assembles them in
//! that order, which makes the output **byte-identical regardless of
//! `--jobs`**.
//!
//! The runner degrades gracefully: a cell that returns `Err`, panics,
//! or blows through its step budget becomes a structured
//! [`CellFailure`] attached to its experiment's table while every
//! sibling cell completes normally. A suite run therefore always
//! produces a (possibly partial) [`SuiteReport`]; callers that need
//! hard failure semantics check [`SuiteReport::has_failures`].

use super::{ExpTable, Experiment};
use hammertime_common::{FaultPlan, Result};
use hammertime_telemetry::{TraceRecord, Tracer};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The row fragments one cell contributes to its experiment's table.
pub type CellRows = Vec<Vec<String>>;

/// Per-run context handed to every experiment's cell builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellCtx {
    /// Quick scale (shrunk access counts, for tests).
    pub quick: bool,
    /// Machine-wide fault plan: experiments thread it into every
    /// machine they build (`None` = healthy hardware). F3 ignores it
    /// and sweeps its own canonical plan, so a degraded-hardware run
    /// still reports against the fixed F3 baseline.
    pub faults: Option<FaultPlan>,
}

impl CellCtx {
    /// Context at the given scale, healthy hardware.
    pub fn new(quick: bool) -> CellCtx {
        CellCtx {
            quick,
            faults: None,
        }
    }
}

/// One independently runnable unit of an experiment's sweep.
pub struct Cell {
    label: String,
    run: Box<dyn FnOnce() -> Result<CellRows> + Send>,
}

impl Cell {
    /// Wraps a closure as a cell. The closure must be self-contained:
    /// it builds and seeds its own machine, so cells can run on any
    /// worker in any order.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<CellRows> + Send + 'static,
    ) -> Cell {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's display label (used for progress lines).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Consumes the cell and produces its rows.
    pub fn run(self) -> Result<CellRows> {
        (self.run)()
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell").field("label", &self.label).finish()
    }
}

/// Why a cell failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The cell returned `Err`.
    Error,
    /// The cell (or a substrate under it) panicked.
    Panic,
    /// The step-budget watchdog killed a runaway cell.
    Timeout,
    /// A supervisor isolated this cell after it repeatedly crashed its
    /// worker process (fleet-layer suspect isolation); siblings kept
    /// running.
    Quarantined,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Error => "error",
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Quarantined => "quarantined",
        })
    }
}

/// How far a failed cell got before it died, so a resumed or supervised
/// run can attribute the failure to a specific point in simulated time
/// instead of discarding all progress information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureProgress {
    /// Fleet epochs this machine fully committed before failing.
    pub epochs_done: u32,
    /// Simulated machine cycle at the failure point.
    pub cycle: u64,
}

/// A structured record of one failed cell: the suite keeps running and
/// the failure rides along in the owning experiment's table instead of
/// aborting the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// The failing cell's label.
    pub label: String,
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable cause (error text, panic message, or the
    /// exhausted budget).
    pub message: String,
    /// Last committed progress, when the runner tracks it. The engine
    /// itself sets `None` (suite cells have no epoch structure); the
    /// fleet layer annotates its per-machine failures.
    pub progress: Option<FailureProgress>,
}

/// How a suite run is scaled, parallelized, filtered, and guarded.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Quick scale (shrunk access counts, for tests).
    pub quick: bool,
    /// Worker threads pulling cells (1 = serial).
    pub jobs: usize,
    /// If set, only experiments whose id matches (case-insensitive).
    pub filter: Option<Vec<String>>,
    /// Machine-wide fault plan handed to every cell via
    /// [`CellCtx::faults`] (`None` = healthy hardware).
    pub faults: Option<FaultPlan>,
    /// Per-cell budget of simulated machine cycles. A cell whose
    /// machines advance past this budget is killed and recorded as a
    /// [`FailureKind::Timeout`] failure; `None` disables the watchdog.
    /// The budget counts machine cycles, not wall-clock time, so it is
    /// deterministic across hosts and worker counts.
    pub step_budget: Option<u64>,
}

impl RunOptions {
    /// Serial, unfiltered, unguarded run at the given scale.
    pub fn new(quick: bool) -> RunOptions {
        RunOptions {
            quick,
            jobs: 1,
            filter: None,
            faults: None,
            step_budget: None,
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> RunOptions {
        self.jobs = jobs.max(1);
        self
    }

    /// Restricts the run to the given experiment ids.
    #[must_use]
    pub fn filter<S: Into<String>>(mut self, ids: impl IntoIterator<Item = S>) -> RunOptions {
        self.filter = Some(ids.into_iter().map(Into::into).collect());
        self
    }

    /// Injects a machine-wide fault plan into every cell.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> RunOptions {
        self.faults = Some(plan);
        self
    }

    /// Arms the per-cell step-budget watchdog.
    #[must_use]
    pub fn step_budget(mut self, cycles: u64) -> RunOptions {
        self.step_budget = Some(cycles);
        self
    }

    fn selects(&self, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(ids) => ids.iter().any(|f| f.eq_ignore_ascii_case(id)),
        }
    }

    fn ctx(&self) -> CellCtx {
        CellCtx {
            quick: self.quick,
            faults: self.faults,
        }
    }
}

thread_local! {
    /// `(remaining, total)` step budget of the cell currently running
    /// on this worker thread; `None` disarms the watchdog.
    static STEP_BUDGET: std::cell::Cell<Option<(u64, u64)>> =
        const { std::cell::Cell::new(None) };

    /// Per-cell tracer of the cell currently running on this worker
    /// thread. Set only by traced suite runs ([`run_suite_traced`]);
    /// machines whose config carries no explicit tracer inherit it.
    static CELL_TRACER: std::cell::RefCell<Option<Tracer>> =
        const { std::cell::RefCell::new(None) };
}

/// The ambient per-cell tracer, if a traced suite run is driving this
/// thread. Consulted by [`crate::machine::Machine::new`] when the
/// machine config has no explicit tracer; `None` (the usual case)
/// keeps the machine untraced.
pub(crate) fn ambient_tracer() -> Option<Tracer> {
    CELL_TRACER.with(|t| t.borrow().clone())
}

fn set_ambient_tracer(tracer: Option<Tracer>) {
    CELL_TRACER.with(|t| *t.borrow_mut() = tracer);
}

/// Panic payload distinguishing a watchdog kill from a genuine panic.
struct StepBudgetExceeded {
    budget: u64,
}

/// An RAII step-budget scope: arms the calling thread's watchdog and,
/// on drop, restores whatever budget was armed before — so scopes
/// nest. A fleet worker driving many machines under one suite cell
/// arms a fresh scope per machine: each machine is charged against its
/// own budget, an exhausted machine never eats a sibling's remaining
/// cycles, and the enclosing cell's budget (if any) is intact once the
/// worker's scopes unwind.
///
/// The previous implementation armed the thread-local directly and
/// cleared it afterwards, which silently disarmed an outer budget when
/// runs nested; the save/restore here is the fix.
pub struct StepBudgetScope {
    saved: Option<(u64, u64)>,
}

impl StepBudgetScope {
    /// Arms a fresh budget of `cycles` simulated machine cycles
    /// (`None` disarms the watchdog inside the scope). The caller's
    /// budget is saved and restored when the scope drops — including
    /// during a panic unwind.
    pub fn arm(cycles: Option<u64>) -> StepBudgetScope {
        let saved = STEP_BUDGET.with(|b| b.replace(cycles.map(|n| (n, n))));
        StepBudgetScope { saved }
    }
}

impl Drop for StepBudgetScope {
    fn drop(&mut self) {
        STEP_BUDGET.with(|b| b.set(self.saved));
    }
}

/// Charges simulated progress against the ambient cell's step budget;
/// a no-op outside a budgeted suite run. Called from the machine's
/// step loop with *exact simulated-cycle deltas* (the caller supplies
/// its own stall guard), so a budget of N machine cycles means the
/// same simulated span on every scheduler path — the wheel and the
/// reference scanner exhaust it on the identical cell.
pub(crate) fn charge_step_budget(cycles: u64) {
    STEP_BUDGET.with(|b| {
        let Some((remaining, total)) = b.get() else {
            return;
        };
        match remaining.checked_sub(cycles) {
            Some(left) => b.set(Some((left, total))),
            None => {
                b.set(None);
                std::panic::panic_any(StepBudgetExceeded { budget: total });
            }
        }
    });
}

/// Runs `f` under its own step-budget scope and panic boundary,
/// converting every failure mode — `Err`, panic, or watchdog kill —
/// into a structured [`CellFailure`] labelled `label`. This is the
/// engine's per-cell guard, exposed so nested runners (the fleet
/// layer's per-machine loop) get identical failure semantics: the
/// caller's own budget is untouched, and a failure here never unwinds
/// past this function.
///
/// `budget: Some(n)` arms a fresh scope of `n` cycles for `f` alone;
/// `None` arms nothing, so `f`'s simulated progress keeps charging
/// whatever budget the *caller* is running under (an enclosing suite
/// cell's, usually) — inheritance, not a blanket disarm.
pub fn run_budgeted<T>(
    label: &str,
    budget: Option<u64>,
    f: impl FnOnce() -> Result<T>,
) -> std::result::Result<T, CellFailure> {
    let out = {
        let _scope = budget.map(|n| StepBudgetScope::arm(Some(n)));
        catch_unwind(AssertUnwindSafe(f))
    };
    match out {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(CellFailure {
            label: label.to_string(),
            kind: FailureKind::Error,
            message: e.to_string(),
            progress: None,
        }),
        Err(payload) => {
            let (kind, message) = if let Some(t) = payload.downcast_ref::<StepBudgetExceeded>() {
                (
                    FailureKind::Timeout,
                    format!("exceeded the step budget of {} machine cycles", t.budget),
                )
            } else if let Some(s) = payload.downcast_ref::<&'static str>() {
                (FailureKind::Panic, (*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                (FailureKind::Panic, s.clone())
            } else {
                (FailureKind::Panic, "non-string panic payload".to_string())
            };
            Err(CellFailure {
                label: label.to_string(),
                kind,
                message,
                progress: None,
            })
        }
    }
}

/// Runs one cell under the watchdog and the panic boundary.
fn run_guarded(cell: Cell, budget: Option<u64>) -> std::result::Result<CellRows, CellFailure> {
    let label = cell.label.clone();
    run_budgeted(&label, budget, move || cell.run())
}

/// A completed cell, reported to the progress callback as workers
/// finish (completion order, not declaration order).
#[derive(Debug)]
pub struct CellProgress<'a> {
    /// Id of the experiment the cell belongs to.
    pub experiment: &'a str,
    /// The cell's label.
    pub label: &'a str,
    /// How many cells have completed, this one included.
    pub completed: usize,
    /// Total cells in the run.
    pub total: usize,
    /// Wall-clock time this cell took.
    pub elapsed: Duration,
}

/// Progress callback that reports nothing.
pub fn silent(_: &CellProgress<'_>) {}

/// Everything a suite run produced: one table per selected experiment,
/// in canonical registry order, each carrying the structured failures
/// of any cell that did not complete.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteReport {
    /// The rendered tables, in canonical registry order.
    pub tables: Vec<ExpTable>,
}

impl SuiteReport {
    /// Every failure across the suite, paired with its experiment id.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &CellFailure)> {
        self.tables
            .iter()
            .flat_map(|t| t.failures.iter().map(move |f| (t.id.as_str(), f)))
    }

    /// `true` when at least one cell failed.
    pub fn has_failures(&self) -> bool {
        self.tables.iter().any(|t| !t.failures.is_empty())
    }
}

/// Runs the selected experiments' cells on `opts.jobs` workers and
/// reduces each experiment's results in declaration order.
///
/// Tables come back in registry order and are byte-identical for any
/// worker count; only the progress callback observes scheduling. A
/// failed cell (error, panic, or watchdog timeout) never aborts the
/// run: its experiment reduces over the surviving cells and records
/// the failure in [`ExpTable::failures`].
pub fn run_suite(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    progress: &(dyn Fn(&CellProgress<'_>) + Sync),
) -> Result<SuiteReport> {
    run_suite_impl(experiments, opts, progress, false).map(|(report, _)| report)
}

/// Like [`run_suite`], but records a cycle-stamped event trace of every
/// machine the cells build (via the ambient per-cell tracer) and
/// returns it alongside the report.
///
/// Each cell records into its own buffer; buffers are concatenated in
/// cell **declaration** order, so — like the tables — the returned
/// trace is byte-identical for any worker count.
///
/// # Errors
///
/// Same as [`run_suite`].
pub fn run_suite_traced(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    progress: &(dyn Fn(&CellProgress<'_>) + Sync),
) -> Result<(SuiteReport, Vec<TraceRecord>)> {
    run_suite_impl(experiments, opts, progress, true)
}

fn run_suite_impl(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    progress: &(dyn Fn(&CellProgress<'_>) + Sync),
    traced: bool,
) -> Result<(SuiteReport, Vec<TraceRecord>)> {
    let selected: Vec<&dyn Experiment> = experiments
        .iter()
        .copied()
        .filter(|e| opts.selects(e.id()))
        .collect();

    // Flatten every experiment's cells into one global work list;
    // `spans[i]` is the slot range belonging to experiment i.
    let ctx = opts.ctx();
    let mut queue: Vec<Mutex<Option<(usize, Cell)>>> = Vec::new();
    let mut spans: Vec<std::ops::Range<usize>> = Vec::new();
    for (ei, exp) in selected.iter().enumerate() {
        let start = queue.len();
        for cell in exp.cells(&ctx) {
            queue.push(Mutex::new(Some((ei, cell))));
        }
        spans.push(start..queue.len());
    }
    let total = queue.len();
    let results: Vec<Mutex<Option<std::result::Result<CellRows, CellFailure>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let traces: Vec<Mutex<Vec<TraceRecord>>> = (0..total).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let workers = opts.jobs.clamp(1, total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= total {
                    break;
                }
                let (ei, cell) = queue[slot]
                    .lock()
                    .expect("cell queue poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let label = cell.label.clone();
                let started = Instant::now();
                // Each traced cell gets a private buffer; the ambient
                // tracer is cleared even when the cell panics
                // (run_guarded contains the unwind), so a failed
                // cell's tracer never leaks into the next cell on
                // this worker.
                let cell_tracer = traced.then(Tracer::buffer);
                set_ambient_tracer(cell_tracer.clone());
                let out = run_guarded(cell, opts.step_budget);
                if let Some(tracer) = cell_tracer {
                    set_ambient_tracer(None);
                    *traces[slot].lock().expect("trace slot poisoned") = tracer.take_records();
                }
                *results[slot].lock().expect("result slot poisoned") = Some(out);
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(&CellProgress {
                    experiment: selected[ei].id(),
                    label: &label,
                    completed,
                    total,
                    elapsed: started.elapsed(),
                });
            });
        }
    });

    let mut tables = Vec::with_capacity(selected.len());
    for (exp, span) in selected.iter().zip(spans) {
        let mut rows = Vec::with_capacity(span.len());
        let mut failures = Vec::new();
        for slot in span {
            let out = results[slot]
                .lock()
                .expect("result slot poisoned")
                .take()
                .expect("every slot was filled");
            match out {
                Ok(r) => rows.push(r),
                Err(f) => failures.push(f),
            }
        }
        let mut table = exp.reduce(opts.quick, rows)?;
        table.failures = failures;
        tables.push(table);
    }
    // Declaration-order concatenation: the trace, like the tables, is
    // independent of worker count and scheduling.
    let trace = traces
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("trace slot poisoned"))
        .collect();
    Ok((SuiteReport { tables }, trace))
}

/// Runs a single experiment serially (the compatibility path behind
/// the per-experiment functions). Unlike [`run_suite`], the first cell
/// error propagates as `Err` — callers that want graceful degradation
/// go through the suite runner.
pub fn run_one(exp: &dyn Experiment, quick: bool) -> Result<ExpTable> {
    let ctx = CellCtx::new(quick);
    let rows: Result<Vec<CellRows>> = exp.cells(&ctx).into_iter().map(Cell::run).collect();
    exp.reduce(quick, rows?)
}
