//! The experiment engine: declarative scenario cells and the
//! deterministic parallel runner.
//!
//! Every experiment declares its sweep as a list of [`Cell`]s — one
//! label plus one closure that builds, seeds, and runs its own
//! [`crate::machine::Machine`] and returns the row fragments it
//! contributes. Cells share no state, so the engine may run them on
//! any number of worker threads: results land in slots indexed by
//! declaration order and each experiment's `reduce` assembles them in
//! that order, which makes the output **byte-identical regardless of
//! `--jobs`**.

use super::{ExpTable, Experiment};
use hammertime_common::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The row fragments one cell contributes to its experiment's table.
pub type CellRows = Vec<Vec<String>>;

/// One independently runnable unit of an experiment's sweep.
pub struct Cell {
    label: String,
    run: Box<dyn FnOnce() -> Result<CellRows> + Send>,
}

impl Cell {
    /// Wraps a closure as a cell. The closure must be self-contained:
    /// it builds and seeds its own machine, so cells can run on any
    /// worker in any order.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<CellRows> + Send + 'static,
    ) -> Cell {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's display label (used for progress lines).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Consumes the cell and produces its rows.
    pub fn run(self) -> Result<CellRows> {
        (self.run)()
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell").field("label", &self.label).finish()
    }
}

/// How a suite run is scaled, parallelized, and filtered.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Quick scale (shrunk access counts, for tests).
    pub quick: bool,
    /// Worker threads pulling cells (1 = serial).
    pub jobs: usize,
    /// If set, only experiments whose id matches (case-insensitive).
    pub filter: Option<Vec<String>>,
}

impl RunOptions {
    /// Serial, unfiltered run at the given scale.
    pub fn new(quick: bool) -> RunOptions {
        RunOptions {
            quick,
            jobs: 1,
            filter: None,
        }
    }

    /// Sets the worker count.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> RunOptions {
        self.jobs = jobs.max(1);
        self
    }

    /// Restricts the run to the given experiment ids.
    #[must_use]
    pub fn filter<S: Into<String>>(mut self, ids: impl IntoIterator<Item = S>) -> RunOptions {
        self.filter = Some(ids.into_iter().map(Into::into).collect());
        self
    }

    fn selects(&self, id: &str) -> bool {
        match &self.filter {
            None => true,
            Some(ids) => ids.iter().any(|f| f.eq_ignore_ascii_case(id)),
        }
    }
}

/// A completed cell, reported to the progress callback as workers
/// finish (completion order, not declaration order).
#[derive(Debug)]
pub struct CellProgress<'a> {
    /// Id of the experiment the cell belongs to.
    pub experiment: &'a str,
    /// The cell's label.
    pub label: &'a str,
    /// How many cells have completed, this one included.
    pub completed: usize,
    /// Total cells in the run.
    pub total: usize,
    /// Wall-clock time this cell took.
    pub elapsed: Duration,
}

/// Progress callback that reports nothing.
pub fn silent(_: &CellProgress<'_>) {}

/// Runs the selected experiments' cells on `opts.jobs` workers and
/// reduces each experiment's results in declaration order.
///
/// Tables come back in registry order and are byte-identical for any
/// worker count; only the progress callback observes scheduling.
pub fn run_suite(
    experiments: &[&dyn Experiment],
    opts: &RunOptions,
    progress: &(dyn Fn(&CellProgress<'_>) + Sync),
) -> Result<Vec<ExpTable>> {
    let selected: Vec<&dyn Experiment> = experiments
        .iter()
        .copied()
        .filter(|e| opts.selects(e.id()))
        .collect();

    // Flatten every experiment's cells into one global work list;
    // `spans[i]` is the slot range belonging to experiment i.
    let mut queue: Vec<Mutex<Option<(usize, Cell)>>> = Vec::new();
    let mut spans: Vec<std::ops::Range<usize>> = Vec::new();
    for (ei, exp) in selected.iter().enumerate() {
        let start = queue.len();
        for cell in exp.cells(opts.quick) {
            queue.push(Mutex::new(Some((ei, cell))));
        }
        spans.push(start..queue.len());
    }
    let total = queue.len();
    let results: Vec<Mutex<Option<Result<CellRows>>>> =
        (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    let workers = opts.jobs.clamp(1, total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let slot = next.fetch_add(1, Ordering::Relaxed);
                if slot >= total {
                    break;
                }
                let (ei, cell) = queue[slot]
                    .lock()
                    .expect("cell queue poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let label = cell.label.clone();
                let started = Instant::now();
                let out = cell.run();
                *results[slot].lock().expect("result slot poisoned") = Some(out);
                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                progress(&CellProgress {
                    experiment: selected[ei].id(),
                    label: &label,
                    completed,
                    total,
                    elapsed: started.elapsed(),
                });
            });
        }
    });

    let mut tables = Vec::with_capacity(selected.len());
    for (exp, span) in selected.iter().zip(spans) {
        let mut rows = Vec::with_capacity(span.len());
        for slot in span {
            let out = results[slot]
                .lock()
                .expect("result slot poisoned")
                .take()
                .expect("every slot was filled");
            rows.push(out?);
        }
        tables.push(exp.reduce(opts.quick, rows)?);
    }
    Ok(tables)
}

/// Runs a single experiment serially (the compatibility path behind
/// the per-experiment functions).
pub fn run_one(exp: &dyn Experiment, quick: bool) -> Result<ExpTable> {
    let rows: Result<Vec<CellRows>> = exp.cells(quick).into_iter().map(Cell::run).collect();
    exp.reduce(quick, rows?)
}
