//! **T1** (paper Table 1): the primitive × defense matrix. For every
//! defense in the catalog, does it stop each attack class, and what
//! does benign traffic pay?

use super::common::{accesses, run_attack, run_benign, FAST_MAC};
use super::engine::Cell;
use super::table::fmt_f;
use super::Experiment;
use crate::taxonomy::DefenseKind;

pub struct T1;

impl Experiment for T1 {
    fn id(&self) -> &'static str {
        "T1"
    }

    fn title(&self) -> &'static str {
        "Defense matrix: cross-domain flips per attack, benign throughput"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "defense",
            "class",
            "locus",
            "double-sided",
            "many-sided(6)",
            "dma",
            "benign ops/kcyc",
        ]
    }

    fn cells(&self, quick: bool) -> Vec<Cell> {
        let n = accesses(quick);
        DefenseKind::catalog(FAST_MAC)
            .into_iter()
            .map(|defense| {
                Cell::new(defense.name(), move || {
                    let double = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), quick)?;
                    let many = run_attack(defense, FAST_MAC, |s| s.arm_many_sided(6, n), quick)?;
                    let dma = run_attack(defense, FAST_MAC, |s| s.arm_dma(n), quick)?;
                    let benign = run_benign(defense, FAST_MAC, quick)?;
                    Ok(vec![vec![
                        defense.name().to_string(),
                        defense
                            .class()
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "-".into()),
                        defense
                            .locus()
                            .map(|l| l.to_string())
                            .unwrap_or_else(|| "-".into()),
                        double.cross_flips_against(2).to_string(),
                        many.cross_flips_against(2).to_string(),
                        dma.cross_flips_against(2).to_string(),
                        fmt_f(benign.throughput()),
                    ]])
                })
            })
            .collect()
    }
}
