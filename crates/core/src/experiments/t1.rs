//! **T1** (paper Table 1): the primitive × defense matrix. For every
//! defense in the catalog, does it stop each attack class, and what
//! does benign traffic pay?

use super::common::{accesses, run_attack, run_benign, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::taxonomy::DefenseKind;

pub struct T1;

impl Experiment for T1 {
    fn id(&self) -> &'static str {
        "T1"
    }

    fn title(&self) -> &'static str {
        "Defense matrix: cross-domain flips per attack, benign throughput"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "defense",
            "class",
            "locus",
            "double-sided",
            "many-sided(6)",
            "dma",
            "benign ops/kcyc",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let n = accesses(ctx.quick);
        DefenseKind::catalog(FAST_MAC)
            .into_iter()
            .map(|defense| {
                Cell::new(defense.name(), move || {
                    let double = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), ctx)?;
                    let many = run_attack(defense, FAST_MAC, |s| s.arm_many_sided(6, n), ctx)?;
                    let dma = run_attack(defense, FAST_MAC, |s| s.arm_dma(n), ctx)?;
                    let benign = run_benign(defense, FAST_MAC, ctx)?;
                    Ok(vec![vec![
                        defense.name().to_string(),
                        defense
                            .class()
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "-".into()),
                        defense
                            .locus()
                            .map(|l| l.to_string())
                            .unwrap_or_else(|| "-".into()),
                        double.cross_flips_against(2).to_string(),
                        many.cross_flips_against(2).to_string(),
                        dma.cross_flips_against(2).to_string(),
                        fmt_f(benign.throughput()),
                    ]])
                })
            })
            .collect()
    }
}
