//! **E9**: the practicality axis — benign throughput, latency, and
//! energy under every defense (no attack running).

use super::common::{run_benign, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::taxonomy::DefenseKind;

pub struct E9;

impl Experiment for E9 {
    fn id(&self) -> &'static str {
        "E9"
    }

    fn title(&self) -> &'static str {
        "Benign overhead per defense (no attack)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "defense",
            "ops/kcyc",
            "mean latency",
            "energy",
            "extra refreshes",
            "throttle cycles",
            "quota throttles",
            "interrupts",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        DefenseKind::catalog(FAST_MAC)
            .into_iter()
            .map(|defense| {
                Cell::new(defense.name(), move || {
                    let r = run_benign(defense, FAST_MAC, ctx)?;
                    Ok(vec![vec![
                        defense.name().to_string(),
                        fmt_f(r.throughput()),
                        fmt_f(r.mc.mean_latency()),
                        format!("{:.3e}", r.energy),
                        (r.dram.ref_neighbor_rows
                            + r.dram.trr_refresh_rows
                            + r.overhead.refresh_ops)
                            .to_string(),
                        r.overhead.throttle_cycles.to_string(),
                        r.overhead.quota_throttles.to_string(),
                        r.overhead.interrupts.to_string(),
                    ]])
                })
            })
            .collect()
    }
}
