//! Shared fixtures: the fast machine scale and the canonical attack /
//! benign scenario runners every experiment builds its cells from.

use super::engine::CellCtx;
use crate::machine::{Machine, MachineConfig};
use crate::metrics::SimReport;
use crate::scenario::{AttackTargeting, CloudScenario};
use crate::taxonomy::DefenseKind;
use hammertime_common::{DomainId, Result};

/// The standard fast-scale MAC used across experiments.
pub const FAST_MAC: u64 = 24;

/// Attack length at the given scale.
pub(crate) fn accesses(quick: bool) -> u64 {
    if quick {
        2_500
    } else {
        8_000
    }
}

/// Runs one attack scenario: four tenants, `arm` installs the hammer,
/// the victim reads its pages, and the machine runs a window budget.
/// The context's fault plan (if any) is threaded into the machine.
pub(crate) fn run_attack(
    defense: DefenseKind,
    mac: u64,
    arm: impl FnOnce(&mut CloudScenario) -> Result<AttackTargeting>,
    ctx: CellCtx,
) -> Result<SimReport> {
    let mut cfg = MachineConfig::fast(defense, mac);
    cfg.faults = ctx.faults;
    run_attack_with(cfg, arm, ctx.quick)
}

/// Variant of [`run_attack`] that takes a pre-built config (used by F3
/// to sweep its own fault plan).
pub(crate) fn run_attack_with(
    cfg: MachineConfig,
    arm: impl FnOnce(&mut CloudScenario) -> Result<AttackTargeting>,
    quick: bool,
) -> Result<SimReport> {
    let mut s = CloudScenario::build_sized(cfg, 4)?;
    arm(&mut s)?;
    s.victim_reads(if quick { 100 } else { 400 })?;
    let windows = if quick { 40 } else { 150 };
    s.run_windows(windows);
    Ok(s.report())
}

/// Runs the canonical three-tenant benign mix (stream, random,
/// zipfian) to completion under `defense`.
pub(crate) fn run_benign(defense: DefenseKind, mac: u64, ctx: CellCtx) -> Result<SimReport> {
    let mut cfg = MachineConfig::fast(defense, mac);
    cfg.faults = ctx.faults;
    run_benign_with(cfg, ctx.quick)
}

/// Variant of [`run_benign`] that takes a pre-built config (used by
/// the ablations that tweak controller knobs).
pub(crate) fn run_benign_with(cfg: MachineConfig, quick: bool) -> Result<SimReport> {
    use hammertime_common::DetRng;
    use hammertime_workloads::{RandomWorkload, StreamWorkload, ZipfianWorkload};
    let windows = if quick { 100 } else { 400 };
    let t_refw = cfg.timing.t_refw;
    let n = accesses(quick) / 4;
    let mut m = Machine::new(cfg)?;
    let seed = m.config().seed;
    let a1 = m.add_tenant(DomainId(1), 2)?;
    let a2 = m.add_tenant(DomainId(2), 2)?;
    let a3 = m.add_tenant(DomainId(3), 2)?;
    m.set_workload(DomainId(1), Box::new(StreamWorkload::new(a1, n, 8)))?;
    m.set_workload(
        DomainId(2),
        Box::new(RandomWorkload::new(a2, n, 0.2, DetRng::new(seed ^ 2))),
    )?;
    m.set_workload(
        DomainId(3),
        Box::new(ZipfianWorkload::new(a3, n, 0.99, DetRng::new(seed ^ 3))),
    )?;
    // Run to completion (makespan), capped at the window budget so a
    // throttled/broken configuration still terminates.
    for _ in 0..windows {
        m.run(t_refw);
        if m.all_finished() {
            break;
        }
    }
    Ok(m.report())
}
