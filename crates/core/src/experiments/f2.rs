//! **F2** (paper Fig. 2): subarray-isolated interleaving keeps the
//! bank-level-parallelism benefit of full interleaving while zeroing
//! cross-domain flips; bank partitioning sacrifices the parallelism.
//!
//! Bank-level parallelism only shows under queue depth, so the benign
//! probe batch-submits random reads straight to the controller and
//! measures the makespan — the memory system's achievable random
//! throughput, independent of core-side pacing (cf. \[49\]'s >18%
//! parallelism benefit).

use super::common::{accesses, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::table::fmt_f;
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;
use hammertime_common::DomainId;

pub struct F2;

impl Experiment for F2 {
    fn id(&self) -> &'static str {
        "F2"
    }

    fn title(&self) -> &'static str {
        "Interleaving schemes: random-batch throughput vs cross-domain flips"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scheme",
            "batch makespan (cyc)",
            "reads/kcyc",
            "attack xdom flips",
            "targeting",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        let batch = if quick { 512u64 } else { 2_048 };
        [
            DefenseKind::None,
            DefenseKind::BankPartitionIsolation,
            DefenseKind::SubarrayIsolation,
        ]
        .into_iter()
        .map(|defense| {
            Cell::new(defense.name(), move || {
                use hammertime_common::{Cycle, RequestSource};
                use hammertime_memctrl::addrmap::MappingScheme;
                use hammertime_memctrl::request::{MemRequest, RequestKind};
                use hammertime_memctrl::{MemCtrl, MemCtrlConfig};

                // Benign probe at the controller: `batch` uniform
                // random reads over one tenant's 8 pages, all queued
                // at cycle 0, served to completion. The makespan is
                // the latest data burst.
                let mapping = match defense {
                    DefenseKind::BankPartitionIsolation => MappingScheme::BankPartition,
                    DefenseKind::SubarrayIsolation => MappingScheme::SubarrayIsolated,
                    _ => MappingScheme::CacheLineInterleave,
                };
                let mut mc_cfg = MemCtrlConfig::baseline();
                mc_cfg.mapping = mapping;
                mc_cfg.queue_capacity = 1 << 16;
                mc_cfg.faults = ctx.faults;
                let mut dram_cfg = hammertime_dram::DramConfig::test_config(1_000_000);
                // Server geometry: 32 banks. Under bank partitioning,
                // one domain's region is one bank's worth of frames
                // (the first 8192); under (subarray-isolated)
                // interleaving the same frames spread across every
                // bank. Random accesses over that region are
                // row-distinct, the irregular pattern of [49].
                dram_cfg.geometry = hammertime_common::Geometry::server();
                dram_cfg.timing = hammertime_dram::TimingParams::tiny_wide();
                dram_cfg.faults = ctx.faults;
                let g = dram_cfg.geometry;
                let frames_per_bank = g.rows_per_bank() as u64 * g.columns as u64
                    / hammertime_common::addr::LINES_PER_PAGE;
                let mut mc = MemCtrl::new(mc_cfg, dram_cfg, 7)?;
                let lines_per_frame = 64u64;
                let mut rng = hammertime_common::DetRng::new(7);
                for i in 0..batch {
                    let frame = rng.below(frames_per_bank);
                    let line = hammertime_common::CacheLineAddr(
                        frame * lines_per_frame + rng.below(lines_per_frame),
                    );
                    mc.submit(MemRequest {
                        id: i,
                        line,
                        kind: RequestKind::Read,
                        source: RequestSource::Core(0),
                        domain: DomainId(1),
                        arrival: Cycle::ZERO,
                    })?;
                }
                mc.drain();
                let makespan = mc
                    .drain_completions()
                    .iter()
                    .map(|c| c.done.raw())
                    .max()
                    .unwrap_or(1)
                    .max(1);
                let n = accesses(quick);
                let mut cfg = MachineConfig::fast(defense, FAST_MAC);
                cfg.faults = ctx.faults;
                let mut s = CloudScenario::build_sized(cfg, 4)?;
                let targeting = s.arm_double_sided(n)?;
                s.run_windows(if quick { 40 } else { 150 });
                let attack = s.report();
                Ok(vec![vec![
                    defense.name().to_string(),
                    makespan.to_string(),
                    fmt_f(batch as f64 * 1000.0 / makespan as f64),
                    attack.cross_flips_against(2).to_string(),
                    format!("{targeting:?}"),
                ]])
            })
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::experiments::f2_interleaving;

    #[test]
    fn f2_subarray_isolation_keeps_parallelism() {
        let t = f2_interleaving(true).unwrap();
        let get = |scheme: &str, col: &str| -> f64 { t.get(scheme, col).unwrap().parse().unwrap() };
        let interleave = get("none", "reads/kcyc");
        let partition = get("bank-partition", "reads/kcyc");
        let subarray = get("subarray-isolation", "reads/kcyc");
        // The paper's middle ground: subarray isolation keeps the full
        // interleaving throughput (>18% over partitioning per [49];
        // here the gap is far larger) while also isolating.
        assert!(
            interleave > partition * 1.18,
            "interleaving benefit missing: {interleave} vs {partition}"
        );
        assert!(
            (subarray - interleave).abs() / interleave < 0.05,
            "subarray isolation must not cost parallelism: {subarray} vs {interleave}"
        );
        assert_eq!(
            t.get("subarray-isolation", "attack xdom flips").unwrap(),
            "0"
        );
        assert_ne!(t.get("none", "attack xdom flips").unwrap(), "0");
    }
}
