//! **E2** (§3): TRRespass — flips vs. aggressor count against an
//! in-DRAM TRR with a fixed-size tracker. Zero flips while the
//! tracker covers the aggressors; bypass beyond.

use super::common::{accesses, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;

pub struct E2;

impl Experiment for E2 {
    fn id(&self) -> &'static str {
        "E2"
    }

    fn title(&self) -> &'static str {
        "TRR bypass: flips vs aggressor count (tracker size 4)"
    }

    fn columns(&self) -> &'static [&'static str] {
        &["aggressors", "total flips", "xdom flips", "trr refreshes"]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        let counts: &[usize] = if quick {
            &[2, 6, 12]
        } else {
            &[2, 3, 4, 6, 8, 12, 16]
        };
        counts
            .iter()
            .map(|&n_aggr| {
                Cell::new(format!("aggressors={n_aggr}"), move || {
                    let mut cfg =
                        MachineConfig::fast(DefenseKind::InDramTrr { table_size: 4 }, FAST_MAC);
                    cfg.faults = ctx.faults;
                    let mut s = CloudScenario::build_sized(cfg, 16)?;
                    s.arm_many_sided(n_aggr, accesses(quick) * 2)?;
                    s.run_windows(if quick { 80 } else { 300 });
                    let r = s.report();
                    Ok(vec![vec![
                        n_aggr.to_string(),
                        r.flips_total.to_string(),
                        r.flips_cross_domain.to_string(),
                        r.dram.trr_refresh_rows.to_string(),
                    ]])
                })
            })
            .collect()
    }
}
