//! **E8** (§4.4): enclave outcomes — integrity-checked memory turns
//! corruption into DoS; unchecked memory needs enclave-visible
//! interrupts to stay safe.

use super::common::accesses;
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;
use hammertime_os::AttackResponse;

pub struct E8;

impl Experiment for E8 {
    fn id(&self) -> &'static str {
        "E8"
    }

    fn title(&self) -> &'static str {
        "Enclave memory under attack"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "configuration",
            "outcome",
            "lockup",
            "xdom flips",
            "enclave interrupts",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        let n = accesses(quick);
        let cases: [(&'static str, bool, AttackResponse, bool); 4] = [
            (
                "integrity-checked, ignore",
                true,
                AttackResponse::Ignore,
                false,
            ),
            ("unchecked, ignore", false, AttackResponse::Ignore, false),
            (
                "unchecked, exit-on-interrupt",
                false,
                AttackResponse::Exit,
                true,
            ),
            (
                "unchecked, remap-on-interrupt",
                false,
                AttackResponse::RequestRemap,
                true,
            ),
        ];
        cases
            .into_iter()
            .map(|(label, checked, response, counters)| {
                Cell::new(label, move || {
                    // MAC above the victim's own per-window activation
                    // count, so self-reads under attacker-induced row
                    // conflicts don't flip the victim's relocated
                    // pages (a fast-scale artifact real MACs are
                    // orders of magnitude above).
                    let mut cfg = MachineConfig::fast(DefenseKind::None, 64);
                    cfg.force_act_counters = counters;
                    cfg.faults = ctx.faults;
                    let mut s = CloudScenario::build_sized(cfg, 4)?;
                    let victim = s.victim;
                    s.machine.make_enclave(victim, checked, response);
                    s.arm_double_sided(n)?;
                    s.victim_reads(if quick { 300 } else { 1_000 })?;
                    s.run_windows(if quick { 40 } else { 150 });
                    let enclave_ints = s
                        .machine
                        .enclave(victim)
                        .map(|e| e.interrupts_seen)
                        .unwrap_or(0);
                    let status = s
                        .machine
                        .enclave(victim)
                        .map(|e| format!("{:?}", e.status))
                        .unwrap_or_default();
                    let r = s.report();
                    Ok(vec![vec![
                        label.to_string(),
                        status,
                        r.lockup.is_some().to_string(),
                        r.cross_flips_against(2).to_string(),
                        enclave_ints.to_string(),
                    ]])
                })
            })
            .collect()
    }
}
