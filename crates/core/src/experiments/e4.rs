//! **E4** (§4.2): frequency-centric defenses — remapping and line
//! locking under a straight hammer, and counter-pacing evasion vs the
//! randomized-reset countermeasure.

use super::common::{accesses, run_attack, FAST_MAC};
use super::engine::{Cell, CellCtx};
use super::Experiment;
use crate::machine::MachineConfig;
use crate::scenario::CloudScenario;
use crate::taxonomy::DefenseKind;

pub struct E4;

impl Experiment for E4 {
    fn id(&self) -> &'static str {
        "E4"
    }

    fn title(&self) -> &'static str {
        "Frequency-centric defenses and counter evasion"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "scenario",
            "xdom flips",
            "remaps/refreshes",
            "locks",
            "interrupts",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        let quick = ctx.quick;
        let n = accesses(quick);
        let mut cells = Vec::new();
        // Straight hammers vs both defenses.
        for defense in [DefenseKind::AggressorRemap, DefenseKind::LineLocking] {
            cells.push(Cell::new(
                format!("{} vs double-sided", defense.name()),
                move || {
                    let r = run_attack(defense, FAST_MAC, |s| s.arm_double_sided(n), ctx)?;
                    Ok(vec![vec![
                        format!("{} vs double-sided", defense.name()),
                        r.cross_flips_against(2).to_string(),
                        r.overhead.pages_remapped.to_string(),
                        r.overhead.lines_locked.to_string(),
                        r.overhead.interrupts.to_string(),
                    ]])
                },
            ));
        }
        // Evasion: paced attack against deterministic vs randomized
        // resets. The defense is victim-refresh (its maintenance ACTs
        // don't feed the counters, so the attacker's phase tracking
        // stays intact — the cleanest demonstration of the evasion).
        for (label, randomize) in [
            ("paced vs fixed reset", false),
            ("paced vs randomized reset", true),
        ] {
            cells.push(Cell::new(label, move || {
                use hammertime_workloads::HammerPattern;
                let mut cfg = MachineConfig::fast(DefenseKind::VictimRefreshInstr, FAST_MAC);
                cfg.randomize_counter_resets = randomize;
                cfg.faults = ctx.faults;
                let threshold = cfg.disturbance.mac / 8; // matches machine auto-threshold
                let mut s = CloudScenario::build_sized(cfg, 4)?;
                // Extra attacker pages so a decoy row exists far from
                // the aggressors in the same bank.
                s.machine.add_tenant(s.attacker, 8)?;
                let (above, below, _) = s.find_double_sided();
                // The attacker knows the threshold and inserts a decoy
                // access right where the counter overflows, so the
                // reported address is the decoy, not the aggressors.
                // The decoy must live in the same bank as the
                // aggressors (so it row-conflicts and its access
                // really is an ACT) but outside their neighborhood.
                let decoy = {
                    let rows = s.machine.rows_of_domain(s.attacker);
                    let (bank_a, row_a) = s
                        .machine
                        .translate(s.attacker, above)
                        .and_then(|p| s.machine.mc().locate(p))
                        .expect("aggressor locates");
                    rows.iter()
                        .find(|(b, r, _)| *b == bank_a && r.abs_diff(row_a) > 4)
                        .map(|(_, _, l)| l[0])
                        .expect("attacker owns a far row in the bank")
                };
                // Period must equal the counter threshold so the decoy
                // access is always the one that overflows the
                // (predictable) counter.
                let pattern = HammerPattern::double_sided(above, below, n)
                    .paced(threshold.saturating_sub(1).max(1), decoy);
                s.machine.set_workload(s.attacker, Box::new(pattern))?;
                s.run_windows(if quick { 40 } else { 150 });
                let r = s.report();
                Ok(vec![vec![
                    label.to_string(),
                    r.cross_flips_against(2).to_string(),
                    r.overhead.refresh_ops.to_string(),
                    r.overhead.lines_locked.to_string(),
                    r.overhead.interrupts.to_string(),
                ]])
            }));
        }
        cells
    }
}
