//! `hammertime` — command-line front end for the Rowhammer mitigation
//! simulator.
//!
//! ```text
//! hammertime-cli catalog                          # the defense taxonomy
//! hammertime-cli attack --defense none            # run an attack scenario
//! hammertime-cli attack --defense victim-refresh/instr --attack many:8
//! hammertime-cli experiments [--all] [--full] [--jobs N] [--filter E1,E2]
//! hammertime-cli generations                      # the E1 worsening sweep
//! ```
//!
//! `experiments` runs the registry through the parallel cell engine:
//! `--jobs` sets the worker count (default: available parallelism),
//! `--filter` (or bare ids) selects experiments, and per-cell progress
//! lines go to stderr while the tables print to stdout in canonical
//! order — byte-identical for any `--jobs` value.

use hammertime::experiments::{self, CellProgress, RunOptions};
use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;
use hammertime_common::Result;

/// Which attack pattern the `attack` subcommand arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttackSpec {
    Double,
    Many(usize),
    Fuzzed(usize),
    Dma,
}

impl AttackSpec {
    fn parse(s: &str) -> Option<AttackSpec> {
        if s == "double" {
            return Some(AttackSpec::Double);
        }
        if s == "dma" {
            return Some(AttackSpec::Dma);
        }
        if let Some(n) = s.strip_prefix("many:") {
            return n.parse().ok().map(AttackSpec::Many);
        }
        if let Some(n) = s.strip_prefix("fuzzed:") {
            return n.parse().ok().map(AttackSpec::Fuzzed);
        }
        None
    }
}

fn parse_defense(name: &str, mac: u64) -> Option<DefenseKind> {
    DefenseKind::catalog(mac)
        .into_iter()
        .find(|d| d.name() == name)
}

fn cmd_catalog() {
    println!(
        "{:<26} {:<18} {:<18} {:<9} needs precise interrupts",
        "name", "class", "locus", "proposed"
    );
    for d in DefenseKind::catalog(10_000) {
        println!(
            "{:<26} {:<18} {:<18} {:<9} {}",
            d.name(),
            d.class()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            d.locus()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            d.is_proposed(),
            d.needs_precise_interrupts(),
        );
    }
}

fn cmd_attack(args: &[String]) -> Result<()> {
    let mut defense = DefenseKind::None;
    let mut attack = AttackSpec::Double;
    let mut accesses: u64 = 4_000;
    let mut mac: u64 = 24;
    let mut seed: u64 = 42;
    let mut windows: u64 = 60;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned().unwrap_or_default();
        match flag {
            "--defense" => {
                defense = parse_defense(&value, mac).unwrap_or_else(|| {
                    eprintln!("unknown defense '{value}' (see `hammertime catalog`)");
                    std::process::exit(2);
                });
            }
            "--attack" => {
                attack = AttackSpec::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown attack '{value}' (double | many:N | fuzzed:N | dma)");
                    std::process::exit(2);
                });
            }
            "--accesses" => accesses = value.parse().unwrap_or(accesses),
            "--mac" => mac = value.parse().unwrap_or(mac),
            "--seed" => seed = value.parse().unwrap_or(seed),
            "--windows" => windows = value.parse().unwrap_or(windows),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let mut cfg = MachineConfig::fast(defense, mac);
    cfg.seed = seed;
    let mut s = CloudScenario::build_sized(
        cfg,
        if matches!(attack, AttackSpec::Double | AttackSpec::Dma) {
            4
        } else {
            16
        },
    )?;
    let targeting = match attack {
        AttackSpec::Double => s.arm_double_sided(accesses)?,
        AttackSpec::Many(n) => s.arm_many_sided(n, accesses)?,
        AttackSpec::Fuzzed(n) => s.arm_fuzzed(n, accesses)?,
        AttackSpec::Dma => s.arm_dma(accesses)?,
    };
    s.victim_reads(accesses / 10 + 1)?;
    s.run_windows(windows);
    let r = s.report();
    println!("defense:            {}", r.defense);
    println!("attack:             {attack:?} ({accesses} accesses, targeting {targeting:?})");
    println!("simulated cycles:   {}", r.cycles);
    println!("total flips:        {}", r.flips_total);
    println!("flips vs victim:    {}", r.cross_flips_against(2));
    println!("interrupts:         {}", r.overhead.interrupts);
    println!("victim refreshes:   {}", r.overhead.refresh_ops);
    println!("pages remapped:     {}", r.overhead.pages_remapped);
    println!("lines locked:       {}", r.overhead.lines_locked);
    println!("throttle cycles:    {}", r.overhead.throttle_cycles);
    println!("dram energy proxy:  {:.3e}", r.energy);
    println!(
        "verdict:            {}",
        if r.cross_flips_against(2) == 0 {
            "attack DEFEATED"
        } else {
            "attack SUCCEEDED"
        }
    );
    Ok(())
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_experiment_args(args: &[String]) -> RunOptions {
    let mut full = false;
    let mut all = false;
    let mut jobs = default_jobs();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--quick" => full = false,
            "--all" => all = true,
            "--jobs" => {
                i += 1;
                jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--filter" => {
                i += 1;
                let list = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--filter needs a comma-separated id list (e.g. T1,E2)");
                    std::process::exit(2);
                });
                ids.extend(list.split(',').map(|s| s.trim().to_uppercase()));
            }
            id if !id.starts_with("--") => ids.push(id.to_uppercase()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut opts = RunOptions::new(!full).jobs(jobs);
    if !all && !ids.is_empty() {
        opts = opts.filter(ids);
    }
    opts
}

fn cmd_experiments(args: &[String]) -> Result<()> {
    let opts = parse_experiment_args(args);
    let progress = |p: &CellProgress<'_>| {
        eprintln!(
            "  [{:>3}/{}] {}/{} ({:.2?})",
            p.completed, p.total, p.experiment, p.label, p.elapsed
        );
    };
    let tables = experiments::run_suite(&experiments::registry(), &opts, &progress)?;
    for t in tables {
        println!("{t}");
    }
    Ok(())
}

fn cmd_generations() -> Result<()> {
    println!("{}", experiments::e1_generations(false)?);
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "hammertime-cli — Rowhammer mitigation simulator (HotOS '21 'Stop! Hammer Time')\n\
         \n\
         USAGE:\n\
           hammertime-cli catalog\n\
           hammertime-cli attack [--defense NAME] [--attack double|many:N|fuzzed:N|dma]\n\
                             [--accesses N] [--mac N] [--seed N] [--windows N]\n\
           hammertime-cli experiments [--all] [--full] [--jobs N] [--filter IDS] [IDS...]\n\
           hammertime-cli generations"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let result = match cmd.as_str() {
        "catalog" => {
            cmd_catalog();
            Ok(())
        }
        "attack" => cmd_attack(&args[1..]),
        "experiments" => cmd_experiments(&args[1..]),
        "generations" => cmd_generations(),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_spec_parsing() {
        assert_eq!(AttackSpec::parse("double"), Some(AttackSpec::Double));
        assert_eq!(AttackSpec::parse("dma"), Some(AttackSpec::Dma));
        assert_eq!(AttackSpec::parse("many:8"), Some(AttackSpec::Many(8)));
        assert_eq!(AttackSpec::parse("fuzzed:5"), Some(AttackSpec::Fuzzed(5)));
        assert_eq!(AttackSpec::parse("bogus"), None);
        assert_eq!(AttackSpec::parse("many:x"), None);
    }

    #[test]
    fn experiment_args_parsing() {
        let args: Vec<String> = ["--quick", "--jobs", "3", "--filter", "t1,e2", "E10"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_experiment_args(&args);
        assert!(opts.quick);
        assert_eq!(opts.jobs, 3);
        assert_eq!(
            opts.filter.as_deref(),
            Some(&["T1".to_string(), "E2".into(), "E10".into()][..])
        );
        // --all overrides any id selection.
        let args: Vec<String> = ["--all", "E1"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_experiment_args(&args).filter, None);
    }

    #[test]
    fn defense_parsing_matches_catalog() {
        for d in DefenseKind::catalog(100) {
            assert_eq!(parse_defense(d.name(), 100), Some(d));
        }
        assert_eq!(parse_defense("nope", 100), None);
    }
}
