//! `hammertime` — command-line front end for the Rowhammer mitigation
//! simulator.
//!
//! ```text
//! hammertime-cli catalog                          # the defense taxonomy
//! hammertime-cli attack --defense none            # run an attack scenario
//! hammertime-cli attack --defense victim-refresh/instr --attack many:8
//! hammertime-cli attack --allocator thp --hammerer paced --victim key
//! hammertime-cli attack --list-combos               # the full triple cross product
//! hammertime-cli experiments [--all] [--full] [--jobs N] [--filter E1,E2]
//!                            [--faults PLAN.json] [--step-budget N] [--strict]
//! hammertime-cli fleet run --machines 1000 --tenants 2 --jobs 8   # population table
//! hammertime-cli generations                      # the E1 worsening sweep
//! hammertime-cli trace record --out run.trace [experiments flags]
//! hammertime-cli trace replay run.trace           # re-drive DRAM, verify
//! hammertime-cli trace diff a.trace b.trace       # first divergence + deltas
//! hammertime-cli trace stats run.trace            # per-kind record counts
//! hammertime-cli trace lint run.trace             # protocol-invariant check
//! ```
//!
//! `fleet run` shards a whole population of heterogeneous machines
//! (mixed geometries, DRAM generations, defense slates, optional
//! fault plans) across worker threads, churns tenants across them
//! (ASID create/destroy plus cross-machine migration), and prints the
//! population table: per-slate flip-rate and defense-overhead
//! percentiles. Like the suite, the output is byte-identical for any
//! `--jobs` value. `--json PATH` additionally writes every machine
//! outcome plus the telemetry metrics snapshot; `--trace-machine ID
//! --trace-out PATH` records one machine's command trace in the same
//! format `trace replay|lint` consume.
//!
//! `fleet run --durable DIR` journals every committed epoch to an
//! on-disk checkpoint journal; after a crash (or a graceful Ctrl-C,
//! exit code 130) `fleet run --resume DIR` continues from the last
//! committed epoch and produces output byte-identical to an
//! uninterrupted run. `--supervise N` runs the shards as N child
//! processes under a supervisor that restarts crashed or hung workers
//! with capped backoff and quarantines machines that repeatedly kill
//! their worker; `fleet worker` is the (hidden) child-process entry.
//!
//! `experiments` runs the combined core + FL registry through the
//! parallel cell engine:
//! `--jobs` sets the worker count (default: available parallelism),
//! `--filter` (or bare ids) selects experiments, and per-cell progress
//! lines go to stderr while the tables print to stdout in canonical
//! order — byte-identical for any `--jobs` value.
//!
//! `--faults PLAN.json` injects a deterministic fault plan into every
//! machine the suite builds (chaos mode); `--step-budget N` kills any
//! cell whose machines advance more than N simulated cycles. Failed
//! cells render as `!!` lines under their table and the run still
//! exits 0 — pass `--strict` to exit nonzero when any cell failed.
//!
//! `trace record` takes the same flags as `experiments` plus a
//! required `--out PATH` (`.jsonl`/`.json` → JSONL, else binary) and
//! records the telemetry command trace of every machine the suite
//! builds; like the tables, the trace is byte-identical for any
//! `--jobs`. `trace replay` rebuilds each recorded device and re-issues
//! its command stream, exiting nonzero if the replayed flips or final
//! `DramStats` diverge from the recording. `attack --trace PATH`
//! records the single attack machine the same way.
//!
//! `trace lint` validates a recorded command stream against the DDR
//! protocol-invariant catalog (bank state machine, bank/rank timing,
//! bus occupancy, refresh deadlines, conservation laws) and exits
//! nonzero on any violation; `--report OUT.jsonl` writes the
//! violations as machine-readable JSONL and `--self-test` additionally
//! mutates the trace (dropped PRE, shifted ACT, fifth ACT in tFAW,
//! starved REF, ...) to prove the rules actually fire.

use hammertime::experiments::{self, CellProgress, RunOptions};
use hammertime::machine::MachineConfig;
use hammertime::scenario::CloudScenario;
use hammertime::taxonomy::DefenseKind;
use hammertime_common::{Error, Result};
use hammertime_telemetry::codec::{self, CommandTrace};
use hammertime_telemetry::{diff_traces, Event, Tracer};
use std::path::{Path, PathBuf};

/// Which attack pattern the `attack` subcommand arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttackSpec {
    Double,
    Many(usize),
    Fuzzed(usize),
    Dma,
}

impl AttackSpec {
    fn parse(s: &str) -> Option<AttackSpec> {
        if s == "double" {
            return Some(AttackSpec::Double);
        }
        if s == "dma" {
            return Some(AttackSpec::Dma);
        }
        if let Some(n) = s.strip_prefix("many:") {
            return n.parse().ok().map(AttackSpec::Many);
        }
        if let Some(n) = s.strip_prefix("fuzzed:") {
            return n.parse().ok().map(AttackSpec::Fuzzed);
        }
        None
    }
}

fn parse_defense(name: &str, mac: u64) -> Option<DefenseKind> {
    DefenseKind::catalog(mac)
        .into_iter()
        .find(|d| d.name() == name)
}

fn cmd_catalog() {
    println!(
        "{:<26} {:<18} {:<18} {:<9} needs precise interrupts",
        "name", "class", "locus", "proposed"
    );
    for d in DefenseKind::catalog(10_000) {
        println!(
            "{:<26} {:<18} {:<18} {:<9} {}",
            d.name(),
            d.class()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            d.locus()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            d.is_proposed(),
            d.needs_precise_interrupts(),
        );
    }
}

fn cmd_attack(args: &[String]) -> Result<()> {
    let mut defense = DefenseKind::None;
    let mut attack: Option<AttackSpec> = None;
    let mut allocator: Option<String> = None;
    let mut hammerer: Option<String> = None;
    let mut victim: Option<String> = None;
    let mut accesses: u64 = 4_000;
    let mut mac: u64 = 24;
    let mut seed: u64 = 42;
    let mut windows: u64 = 60;
    let mut trace_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--list-combos" {
            for spec in hammertime_attack::AttackSpec::all_triples() {
                println!("{}", spec.name());
            }
            return Ok(());
        }
        let value = args.get(i + 1).cloned().unwrap_or_default();
        match flag {
            "--trace" => {
                if value.is_empty() {
                    eprintln!("--trace needs an output file path");
                    std::process::exit(2);
                }
                trace_out = Some(PathBuf::from(&value));
            }
            "--defense" => {
                defense = parse_defense(&value, mac).unwrap_or_else(|| {
                    eprintln!("unknown defense '{value}' (see `hammertime catalog`)");
                    std::process::exit(2);
                });
            }
            "--attack" => {
                attack = Some(AttackSpec::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown attack '{value}' (double | many:N | fuzzed:N | dma)");
                    std::process::exit(2);
                }));
            }
            "--allocator" => allocator = Some(value),
            "--hammerer" => hammerer = Some(value),
            "--victim" => victim = Some(value),
            "--accesses" => accesses = value.parse().unwrap_or(accesses),
            "--mac" => mac = value.parse().unwrap_or(mac),
            "--seed" => seed = value.parse().unwrap_or(seed),
            "--windows" => windows = value.parse().unwrap_or(windows),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if allocator.is_some() || hammerer.is_some() || victim.is_some() {
        if attack.is_some() {
            eprintln!("--attack and --allocator/--hammerer/--victim are mutually exclusive");
            std::process::exit(2);
        }
        let spec_str = format!(
            "{}/{}/{}",
            allocator.as_deref().unwrap_or("hugepage"),
            hammerer.as_deref().unwrap_or("double"),
            victim.as_deref().unwrap_or("flips"),
        );
        let spec = hammertime_attack::AttackSpec::parse(&spec_str)?;
        return run_attack_pipeline(spec, defense, mac, seed, accesses, windows, trace_out);
    }
    let attack = attack.unwrap_or(AttackSpec::Double);
    let mut cfg = MachineConfig::fast(defense, mac);
    cfg.seed = seed;
    let tracer = trace_out.as_ref().map(|_| Tracer::buffer());
    cfg.tracer = tracer.clone();
    let mut s = CloudScenario::build_sized(
        cfg,
        if matches!(attack, AttackSpec::Double | AttackSpec::Dma) {
            4
        } else {
            16
        },
    )?;
    let targeting = match attack {
        AttackSpec::Double => s.arm_double_sided(accesses)?,
        AttackSpec::Many(n) => s.arm_many_sided(n, accesses)?,
        AttackSpec::Fuzzed(n) => s.arm_fuzzed(n, accesses)?,
        AttackSpec::Dma => s.arm_dma(accesses)?,
    };
    s.victim_reads(accesses / 10 + 1)?;
    s.run_windows(windows);
    let r = s.report();
    println!("defense:            {}", r.defense);
    println!("attack:             {attack:?} ({accesses} accesses, targeting {targeting:?})");
    println!("simulated cycles:   {}", r.cycles);
    println!("total flips:        {}", r.flips_total);
    println!("flips vs victim:    {}", r.cross_flips_against(2));
    println!("interrupts:         {}", r.overhead.interrupts);
    println!("victim refreshes:   {}", r.overhead.refresh_ops);
    println!("pages remapped:     {}", r.overhead.pages_remapped);
    println!("lines locked:       {}", r.overhead.lines_locked);
    println!("throttle cycles:    {}", r.overhead.throttle_cycles);
    println!("dram energy proxy:  {:.3e}", r.energy);
    println!(
        "verdict:            {}",
        if r.cross_flips_against(2) == 0 {
            "attack DEFEATED"
        } else {
            "attack SUCCEEDED"
        }
    );
    if let (Some(path), Some(tracer)) = (trace_out, tracer) {
        // Drop the scenario first so the device's final-stats record
        // lands in the buffer before we drain it.
        drop(s);
        let trace = CommandTrace::new(tracer.take_records());
        codec::write_path(&path, &trace)?;
        eprintln!(
            "trace ({} records) written to {}",
            trace.records.len(),
            path.display()
        );
    }
    Ok(())
}

/// Runs one modular attack-pipeline triple (`crates/attack`) and
/// prints the orchestrator's verdict next to the raw flip counts.
fn run_attack_pipeline(
    spec: hammertime_attack::AttackSpec,
    defense: DefenseKind,
    mac: u64,
    seed: u64,
    accesses: u64,
    windows: u64,
    trace_out: Option<PathBuf>,
) -> Result<()> {
    let mut cfg = MachineConfig::fast(defense, mac);
    cfg.seed = seed;
    let tracer = trace_out.as_ref().map(|_| Tracer::buffer());
    cfg.tracer = tracer.clone();
    let mut run = hammertime_attack::AttackRun::new(spec, cfg);
    run.accesses = accesses;
    run.windows = windows;
    // `execute` drops its machine before returning, so the device's
    // final-stats record is already in the buffer when we drain it.
    let out = run.execute()?;
    let r = &out.report;
    println!("defense:            {}", r.defense);
    println!(
        "triple:             {} ({accesses} accesses, {} survey, {} aggressors)",
        out.triple,
        if out.exact { "exact" } else { "presumed" },
        out.aggressors,
    );
    println!("targeting:          {:?}", out.targeting);
    println!("simulated cycles:   {}", r.cycles);
    println!("total flips:        {}", r.flips_total);
    println!("raw flips vs victim: {}", out.verdict.raw_flips);
    println!("counted by victim:  {}", out.verdict.counted_flips);
    println!("interrupts:         {}", r.overhead.interrupts);
    println!("victim refreshes:   {}", r.overhead.refresh_ops);
    println!("pages remapped:     {}", r.overhead.pages_remapped);
    println!("lines locked:       {}", r.overhead.lines_locked);
    println!("throttle cycles:    {}", r.overhead.throttle_cycles);
    println!("dram energy proxy:  {:.3e}", r.energy);
    println!(
        "verdict:            {}",
        if out.verdict.success {
            "attack SUCCEEDED"
        } else {
            "attack DEFEATED"
        }
    );
    if let (Some(path), Some(tracer)) = (trace_out, tracer) {
        let trace = CommandTrace::new(tracer.take_records());
        codec::write_path(&path, &trace)?;
        eprintln!(
            "trace ({} records) written to {}",
            trace.records.len(),
            path.display()
        );
    }
    Ok(())
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parsed `experiments` invocation: engine options plus CLI-only
/// extras (bench-JSON path, strict exit semantics).
#[derive(Debug)]
struct ExperimentArgs {
    opts: RunOptions,
    bench_json: Option<std::path::PathBuf>,
    strict: bool,
}

fn parse_experiment_args(args: &[String]) -> std::result::Result<ExperimentArgs, String> {
    let mut full = false;
    let mut all = false;
    let mut jobs = default_jobs();
    let mut ids: Vec<String> = Vec::new();
    let mut bench_json = None;
    let mut faults = None;
    let mut step_budget = None;
    let mut strict = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--quick" => full = false,
            "--all" => all = true,
            "--strict" => strict = true,
            "--faults" => {
                i += 1;
                let path = args.get(i).ok_or("--faults needs a JSON plan file path")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("--faults: cannot read {path}: {e}"))?;
                let plan: hammertime_common::FaultPlan = serde_json::from_str(&text)
                    .map_err(|e| format!("--faults: {path} is not a valid fault plan: {e}"))?;
                faults = Some(plan);
            }
            "--step-budget" => {
                i += 1;
                step_budget = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &u64| n > 0)
                        .ok_or("--step-budget needs a positive cycle count")?,
                );
            }
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--filter" => {
                i += 1;
                let list = args
                    .get(i)
                    .ok_or("--filter needs a comma-separated id list (e.g. T1,E2)")?;
                ids.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_uppercase),
                );
            }
            "--bench-json" => {
                i += 1;
                let path = args.get(i).ok_or("--bench-json needs a file path")?;
                bench_json = Some(std::path::PathBuf::from(path));
            }
            id if !id.starts_with("--") => ids.push(id.to_uppercase()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    // An id that matches nothing in the registry is a hard error: a
    // typo'd `--filter E12` must not silently run zero experiments.
    // Validated against the combined core + FL registry.
    let known: Vec<&str> = hammertime_fleet::full_registry()
        .iter()
        .map(|e| e.id())
        .collect();
    for id in &ids {
        if !known.iter().any(|k| k.eq_ignore_ascii_case(id)) {
            return Err(format!(
                "unknown experiment id '{id}' (valid: {})",
                known.join(", ")
            ));
        }
    }
    // Duplicate / overlapping selections (`--filter T1,E2 T1`) collapse
    // to a single run of each experiment.
    let mut seen = std::collections::HashSet::new();
    ids.retain(|id| seen.insert(id.clone()));
    let mut opts = RunOptions::new(!full).jobs(jobs);
    if !all && !ids.is_empty() {
        opts = opts.filter(ids);
    }
    opts.faults = faults;
    opts.step_budget = step_budget;
    Ok(ExperimentArgs {
        opts,
        bench_json,
        strict,
    })
}

fn cmd_experiments(args: &[String]) -> Result<()> {
    let parsed = parse_experiment_args(args).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let cells_done = std::sync::atomic::AtomicU64::new(0);
    let progress = |p: &CellProgress<'_>| {
        cells_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        eprintln!(
            "  [{:>3}/{}] {}/{} ({:.2?})",
            p.completed, p.total, p.experiment, p.label, p.elapsed
        );
    };
    let started = std::time::Instant::now();
    let cycles_before = hammertime::metrics::sim_cycles();
    let report =
        experiments::run_suite(&hammertime_fleet::full_registry(), &parsed.opts, &progress)?;
    let wall = started.elapsed();
    let cycles = hammertime::metrics::sim_cycles() - cycles_before;
    for t in &report.tables {
        println!("{t}");
    }
    if let Some(path) = &parsed.bench_json {
        let bench = bench_report(
            &report.tables,
            cells_done.load(std::sync::atomic::Ordering::Relaxed),
            parsed.opts.jobs,
            wall,
            cycles,
        );
        let json = serde_json::to_string_pretty(&bench)
            .map_err(|e| hammertime_common::Error::Config(format!("bench json: {e}")))?;
        std::fs::write(path, json + "\n").map_err(|e| {
            hammertime_common::Error::Config(format!("write {}: {e}", path.display()))
        })?;
        eprintln!("bench report written to {}", path.display());
    }
    let failed = report.failures().count();
    if failed > 0 {
        eprintln!("{failed} cell(s) failed; tables above are partial");
        if parsed.strict {
            return Err(hammertime_common::Error::Fault(format!(
                "--strict: {failed} cell(s) failed"
            )));
        }
    }
    Ok(())
}

/// Throughput summary for `--bench-json`: how fast the suite ran, in
/// the units the perf trajectory tracks (cells/sec, simulated
/// cycles/sec).
#[derive(Debug, serde::Serialize)]
struct BenchReport {
    experiments: Vec<String>,
    jobs: u64,
    cells: u64,
    wall_seconds: f64,
    cells_per_sec: f64,
    sim_cycles: u64,
    sim_cycles_per_sec: f64,
}

fn bench_report(
    tables: &[experiments::ExpTable],
    cells: u64,
    jobs: usize,
    wall: std::time::Duration,
    cycles: u64,
) -> BenchReport {
    let secs = wall.as_secs_f64().max(1e-9);
    BenchReport {
        experiments: tables.iter().map(|t| t.id.clone()).collect(),
        jobs: jobs as u64,
        cells,
        wall_seconds: secs,
        cells_per_sec: cells as f64 / secs,
        sim_cycles: cycles,
        sim_cycles_per_sec: cycles as f64 / secs,
    }
}

/// `fleet run`: the sharded multi-machine population simulation.
fn fleet_run(args: &[String]) -> Result<()> {
    let mut cfg = hammertime_fleet::FleetConfig::new(64);
    cfg.jobs = default_jobs();
    let mut json_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut strict = false;
    let mut durable_dir: Option<PathBuf> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut supervise: Option<usize> = None;
    let mut quarantine_after: Option<u32> = None;
    let mut hb_timeout_ms: Option<u64> = None;
    let mut backoff_ms: Option<u64> = None;
    let mut max_restarts: Option<u32> = None;
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> String {
            i += 1;
            args.get(i)
                .cloned()
                .unwrap_or_else(|| bad(format!("{flag} needs a value")))
        };
        match flag {
            "--machines" => {
                cfg.machines = value()
                    .parse()
                    .ok()
                    .filter(|&n: &u32| n > 0)
                    .unwrap_or_else(|| bad("--machines needs a positive integer".into()))
            }
            "--tenants" => {
                cfg.tenants = value()
                    .parse()
                    .unwrap_or_else(|_| bad("--tenants needs an integer".into()))
            }
            "--jobs" => {
                cfg.jobs = value()
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| bad("--jobs needs a positive integer".into()))
            }
            "--epochs" => {
                cfg.epochs = value()
                    .parse()
                    .ok()
                    .filter(|&n: &u32| n > 0)
                    .unwrap_or_else(|| bad("--epochs needs a positive integer".into()))
            }
            "--windows" => {
                cfg.windows_per_epoch = value()
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n > 0)
                    .unwrap_or_else(|| bad("--windows needs a positive integer".into()))
            }
            "--seed" => {
                cfg.seed = value()
                    .parse()
                    .unwrap_or_else(|_| bad("--seed needs an integer".into()))
            }
            "--full" => cfg.quick = false,
            "--quick" => cfg.quick = true,
            "--strict" => strict = true,
            "--faults" => {
                let path = value();
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| bad(format!("--faults: cannot read {path}: {e}")));
                cfg.faults = Some(serde_json::from_str(&text).unwrap_or_else(|e| {
                    bad(format!("--faults: {path} is not a valid fault plan: {e}"))
                }));
            }
            "--step-budget" => {
                cfg.step_budget = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(
                            || bad("--step-budget needs a positive cycle count".into()),
                        ),
                )
            }
            "--attack-triples" => {
                let list = value();
                cfg.attack_triples = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.attack_triples.is_empty() {
                    bad("--attack-triples needs a comma-separated alloc/hammer/victim list".into());
                }
                for t in &cfg.attack_triples {
                    if let Err(e) = hammertime_attack::AttackSpec::parse(t) {
                        bad(format!("--attack-triples: {e}"));
                    }
                }
            }
            "--slates" => {
                let list = value();
                // The fleet runs at the fast-scale MAC (the default
                // slates' PARA probability 8/24 pins it).
                cfg.slates = list
                    .split(',')
                    .map(|s| s.trim())
                    .filter(|s| !s.is_empty())
                    .map(|name| {
                        parse_defense(name, 24).unwrap_or_else(|| {
                            bad(format!(
                                "--slates: unknown defense {name}; see `hammertime-cli catalog`"
                            ))
                        })
                    })
                    .collect();
                if cfg.slates.is_empty() {
                    bad("--slates needs a comma-separated defense list".into());
                }
            }
            "--trace-machine" => {
                cfg.trace_machine = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| bad("--trace-machine needs a machine id".into())),
                )
            }
            "--trace-out" => trace_out = Some(PathBuf::from(value())),
            "--json" => json_out = Some(PathBuf::from(value())),
            "--durable" => durable_dir = Some(PathBuf::from(value())),
            "--resume" => resume_dir = Some(PathBuf::from(value())),
            "--supervise" => {
                supervise = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| bad("--supervise needs a positive worker count".into())),
                )
            }
            "--quarantine-after" => {
                quarantine_after = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &u32| n > 0)
                        .unwrap_or_else(|| bad("--quarantine-after needs a positive count".into())),
                )
            }
            "--hb-timeout-ms" => {
                hb_timeout_ms = Some(
                    value()
                        .parse()
                        .ok()
                        .filter(|&n: &u64| n > 0)
                        .unwrap_or_else(|| bad("--hb-timeout-ms needs positive millis".into())),
                )
            }
            "--backoff-ms" => {
                backoff_ms = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| bad("--backoff-ms needs millis".into())),
                )
            }
            "--max-restarts" => {
                max_restarts = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| bad("--max-restarts needs a count".into())),
                )
            }
            other => bad(format!("fleet run: unknown flag {other}")),
        }
        i += 1;
    }
    if trace_out.is_some() && cfg.trace_machine.is_none() {
        bad("--trace-out needs --trace-machine ID".into());
    }
    if durable_dir.is_some() && resume_dir.is_some() {
        bad("--durable and --resume are mutually exclusive".into());
    }

    // Graceful SIGINT: first Ctrl-C raises the stop flag — the run
    // finishes the epoch in flight, journals a clean-stop marker
    // (with --durable/--resume), prints partial tables, and exits
    // 130. A second Ctrl-C kills the process the default way.
    let control = hammertime_fleet::RunControl::default();
    #[cfg(unix)]
    sigint::install_graceful(control.stop.clone());

    let mut durable_run = match (&durable_dir, &resume_dir) {
        (Some(dir), None) => Some(hammertime_fleet::DurableRun::create(dir, &cfg)?),
        (None, Some(dir)) => {
            let run = hammertime_fleet::DurableRun::resume(dir, &cfg)?;
            eprintln!(
                "fleet: resuming from {} with {} committed epoch(s){}",
                dir.display(),
                run.committed_epochs(),
                if run.had_clean_stop() {
                    " (previous run stopped cleanly)"
                } else {
                    ""
                },
            );
            Some(run)
        }
        _ => None,
    };

    let started = std::time::Instant::now();
    let (report, completed) = if let Some(workers) = supervise {
        let exe = std::env::current_exe()
            .map_err(|e| Error::Config(format!("cannot locate own binary: {e}")))?;
        let mut opts = hammertime_fleet::SuperviseOpts::new(vec![
            exe.to_string_lossy().into_owned(),
            "fleet".into(),
            "worker".into(),
        ]);
        opts.workers = workers;
        if let Some(k) = quarantine_after {
            opts.quarantine_after = k;
        }
        if let Some(ms) = hb_timeout_ms {
            opts.hb_timeout = std::time::Duration::from_millis(ms);
        }
        if let Some(ms) = backoff_ms {
            opts.backoff_base = std::time::Duration::from_millis(ms);
        }
        if let Some(n) = max_restarts {
            opts.max_restarts = n;
        }
        hammertime_fleet::run_supervised(&cfg, &opts, durable_run.as_mut(), &control)?
    } else {
        if quarantine_after.is_some()
            || hb_timeout_ms.is_some()
            || backoff_ms.is_some()
            || max_restarts.is_some()
        {
            bad(
                "--quarantine-after/--hb-timeout-ms/--backoff-ms/--max-restarts need --supervise"
                    .into(),
            );
        }
        hammertime_fleet::run_fleet_controlled(&cfg, &control, durable_run.as_mut())?
    };
    let wall = started.elapsed();
    let failed = report.failures().count();
    eprintln!(
        "fleet: {} machines, {} slates, jobs={}, {} epochs x {} windows, \
         {} failed, {:.2?} ({:.1} machines/sec)",
        cfg.machines,
        cfg.slates.len(),
        cfg.jobs,
        cfg.epochs,
        cfg.windows_per_epoch,
        failed,
        wall,
        cfg.machines as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!(
        "{}",
        report.stats.table(
            "FLEET",
            &format!(
                "population of {} machines (seed {:#x})",
                cfg.machines, cfg.seed
            ),
        )
    );

    if let Some(path) = &json_out {
        // Everything a dashboard wants: per-machine outcomes, the
        // exact distributions, and the log2-histogram metrics
        // snapshot of the same samples.
        #[derive(serde::Serialize)]
        struct FleetJson {
            outcomes: Vec<hammertime_fleet::MachineOutcome>,
            stats: hammertime_fleet::PopulationStats,
            metrics: hammertime_telemetry::MetricsSnapshot,
        }
        let payload = FleetJson {
            outcomes: report.outcomes.clone(),
            stats: report.stats.clone(),
            metrics: report.stats.metrics(),
        };
        let json = serde_json::to_string_pretty(&payload)
            .map_err(|e| Error::Config(format!("fleet json: {e}")))?;
        std::fs::write(path, json + "\n")
            .map_err(|e| Error::Config(format!("write {}: {e}", path.display())))?;
        eprintln!("fleet report written to {}", path.display());
    }
    if let Some(path) = &trace_out {
        let trace = CommandTrace::new(report.trace.clone());
        codec::write_path(path, &trace)?;
        eprintln!(
            "trace of machine {} ({} records) written to {}",
            cfg.trace_machine.unwrap(),
            trace.records.len(),
            path.display()
        );
    }
    if failed > 0 {
        for (id, f) in report.failures() {
            match &f.progress {
                Some(p) => eprintln!(
                    "  machine {id}: [{}] {} (reached epoch {}, cycle {})",
                    f.kind, f.message, p.epochs_done, p.cycle
                ),
                None => eprintln!("  machine {id}: [{}] {}", f.kind, f.message),
            }
        }
        if strict {
            return Err(Error::Fault(format!(
                "--strict: {failed} machine(s) failed"
            )));
        }
    }
    if !completed {
        let dir = durable_dir.as_ref().or(resume_dir.as_ref());
        eprintln!(
            "fleet: stopped gracefully after the epoch in flight{}",
            match dir {
                Some(d) => format!("; resume with `fleet run --resume {}`", d.display()),
                None => String::new(),
            }
        );
        // 130 = 128 + SIGINT: the conventional "killed by Ctrl-C"
        // code, distinct from 1 (error) and 2 (usage).
        std::process::exit(130);
    }
    Ok(())
}

/// `fleet worker` (hidden): the supervised shard worker. Speaks the
/// [`hammertime_fleet::worker`] JSON-line protocol on stdin/stdout;
/// only ever spawned by `fleet run --supervise`.
fn fleet_worker() -> Result<()> {
    // The supervisor owns graceful shutdown: a terminal Ctrl-C hits
    // the whole foreground process group, and workers must survive it
    // long enough for the supervisor to finish the epoch in flight.
    #[cfg(unix)]
    sigint::ignore();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    hammertime_fleet::run_worker(&mut input, &mut output)
}

fn cmd_fleet(args: &[String]) -> Result<()> {
    match args.first().map(String::as_str) {
        Some("run") => fleet_run(&args[1..]),
        Some("worker") => fleet_worker(),
        _ => {
            eprintln!("fleet needs a subcommand: run");
            std::process::exit(2);
        }
    }
}

/// Minimal libc-free SIGINT plumbing (Unix only). The handler does a
/// single async-signal-safe atomic store; a watcher thread bridges it
/// to the fleet's [`RunControl`](hammertime_fleet::RunControl) stop
/// flag and then restores the default disposition, so a second Ctrl-C
/// kills the process the ordinary way.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;
    const SIG_IGN: usize = 1;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    static HIT: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_: i32) {
        HIT.store(true, Ordering::SeqCst);
    }

    /// First Ctrl-C raises `stop`; the second falls through to the
    /// default fatal disposition.
    pub fn install_graceful(stop: Arc<AtomicBool>) {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
        std::thread::spawn(move || loop {
            if HIT.load(Ordering::SeqCst) {
                stop.store(true, Ordering::SeqCst);
                eprintln!("fleet: SIGINT — finishing the epoch in flight (Ctrl-C again to kill)");
                unsafe {
                    signal(SIGINT, SIG_DFL);
                }
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
    }

    /// Workers ignore SIGINT outright (see [`super::fleet_worker`]).
    pub fn ignore() {
        unsafe {
            signal(SIGINT, SIG_IGN);
        }
    }
}

fn cmd_generations() -> Result<()> {
    println!("{}", experiments::e1_generations(false)?);
    Ok(())
}

/// Pulls a `--out PATH` pair out of `args`, returning the path and the
/// remaining arguments (which `trace record` feeds to the shared
/// `experiments` parser).
fn split_out_flag(args: &[String]) -> std::result::Result<(Option<PathBuf>, Vec<String>), String> {
    let mut out = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            i += 1;
            let path = args.get(i).ok_or("--out needs a file path")?;
            out = Some(PathBuf::from(path));
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    Ok((out, rest))
}

fn trace_record(args: &[String]) -> Result<()> {
    let (out, rest) = split_out_flag(args).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let Some(out) = out else {
        eprintln!("trace record needs --out PATH (.jsonl/.json → JSONL, else binary)");
        std::process::exit(2);
    };
    let parsed = parse_experiment_args(&rest).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    });
    let (report, records) = hammertime_fleet::run_all_traced(&parsed.opts)?;
    let failed = report.failures().count();
    if failed > 0 {
        eprintln!("{failed} cell(s) failed; the trace covers the cells that ran");
        if parsed.strict {
            return Err(Error::Fault(format!("--strict: {failed} cell(s) failed")));
        }
    }
    let devices = records
        .iter()
        .filter(|r| matches!(r.event, Event::DeviceReset { .. }))
        .count();
    let trace = CommandTrace::new(records);
    codec::write_path(&out, &trace)?;
    println!(
        "recorded {} records ({} devices) to {}",
        trace.records.len(),
        devices,
        out.display()
    );
    Ok(())
}

fn trace_replay(args: &[String]) -> Result<()> {
    let Some(path) = args.first() else {
        eprintln!("trace replay needs a trace file path");
        std::process::exit(2);
    };
    let trace = codec::read_path(Path::new(path))?;
    let summary = hammertime_dram::replay_records(&trace.records)?;
    println!(
        "replay OK: {} devices, {} commands, {} flips reproduced exactly",
        summary.devices, summary.commands, summary.flips
    );
    Ok(())
}

fn trace_diff(args: &[String]) -> Result<()> {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        eprintln!("trace diff needs two trace file paths");
        std::process::exit(2);
    };
    let ta = codec::read_path(Path::new(a))?;
    let tb = codec::read_path(Path::new(b))?;
    let diff = diff_traces(&ta.records, &tb.records);
    println!("{diff}");
    if diff.is_empty() {
        Ok(())
    } else {
        Err(Error::Fault(format!("{a} and {b} differ")))
    }
}

fn trace_stats(args: &[String]) -> Result<()> {
    let Some(path) = args.first() else {
        eprintln!("trace stats needs a trace file path");
        std::process::exit(2);
    };
    let trace = codec::read_path(Path::new(path))?;
    let records = &trace.records;
    println!("{path}: {} records", records.len());
    let cycles: Vec<u64> = records.iter().map(|r| r.cycle).collect();
    if let (Some(min), Some(max)) = (cycles.iter().min(), cycles.iter().max()) {
        println!("cycle span: {min} .. {max}");
    }
    let mut counts = std::collections::BTreeMap::new();
    for rec in records {
        *counts.entry(rec.event.kind().to_string()).or_insert(0u64) += 1;
        if let Event::Command { cmd } = &rec.event {
            *counts
                .entry(format!("command:{}", cmd.mnemonic()))
                .or_insert(0) += 1;
        }
    }
    for (kind, n) in &counts {
        println!("  {kind:<24} {n}");
    }
    Ok(())
}

fn trace_lint(args: &[String]) -> Result<()> {
    let mut path: Option<&String> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut self_test = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--report needs an output file path");
                    std::process::exit(2);
                };
                report_out = Some(PathBuf::from(value));
                i += 1;
            }
            "--self-test" => self_test = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(&args[i]),
            other => {
                eprintln!("trace lint: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("trace lint needs a trace file path");
        std::process::exit(2);
    };
    let trace = codec::read_path(Path::new(path))?;
    let report = hammertime_check::lint_trace(&trace);
    println!(
        "linted {} commands across {} device segment(s): {} violation(s)",
        report.commands,
        report.devices,
        report.violations.len()
    );
    for v in &report.violations {
        println!("  {v}");
    }
    if let Some(out) = report_out {
        std::fs::write(&out, report.to_jsonl())
            .map_err(|e| Error::Config(format!("cannot write {}: {e}", out.display())))?;
        println!("violation report written to {}", out.display());
    }
    if self_test {
        let st = hammertime_check::mutate::self_test(&trace.records);
        print!("{}", st.summary());
        if !st.passed() {
            return Err(Error::Fault(
                "mutation self-test failed: a corrupted trace went undetected".into(),
            ));
        }
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(Error::Fault(format!(
            "{path}: {} protocol-invariant violation(s)",
            report.violations.len()
        )))
    }
}

fn cmd_trace(args: &[String]) -> Result<()> {
    match args.first().map(String::as_str) {
        Some("record") => trace_record(&args[1..]),
        Some("replay") => trace_replay(&args[1..]),
        Some("diff") => trace_diff(&args[1..]),
        Some("stats") => trace_stats(&args[1..]),
        Some("lint") => trace_lint(&args[1..]),
        _ => {
            eprintln!("trace needs a subcommand: record | replay | diff | stats | lint");
            std::process::exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "hammertime-cli — Rowhammer mitigation simulator (HotOS '21 'Stop! Hammer Time')\n\
         \n\
         USAGE:\n\
           hammertime-cli catalog\n\
           hammertime-cli attack [--defense NAME] [--attack double|many:N|fuzzed:N|dma]\n\
                             [--allocator A] [--hammerer H] [--victim V] [--list-combos]\n\
                             [--accesses N] [--mac N] [--seed N] [--windows N] [--trace PATH]\n\
           hammertime-cli experiments [--all] [--full] [--jobs N] [--filter IDS] [IDS...]\n\
                             [--faults PLAN.json] [--step-budget N] [--strict]\n\
           hammertime-cli fleet run [--machines N] [--tenants M] [--jobs K] [--epochs E]\n\
                             [--windows W] [--seed S] [--full] [--faults PLAN.json]\n\
                             [--slates NAME,...] [--attack-triples A/H/V,...]\n\
                             [--step-budget N] [--json PATH]\n\
                             [--trace-machine ID --trace-out PATH] [--strict]\n\
                             [--durable DIR | --resume DIR]\n\
                             [--supervise N [--quarantine-after K] [--hb-timeout-ms MS]\n\
                              [--backoff-ms MS] [--max-restarts N]]\n\
                             (exit codes: 0 ok, 1 error, 2 usage, 130 graceful SIGINT stop)\n\
           hammertime-cli generations\n\
           hammertime-cli trace record --out PATH [experiments flags]\n\
           hammertime-cli trace replay PATH\n\
           hammertime-cli trace diff A B\n\
           hammertime-cli trace stats PATH\n\
           hammertime-cli trace lint PATH [--report OUT.jsonl] [--self-test]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let result = match cmd.as_str() {
        "catalog" => {
            cmd_catalog();
            Ok(())
        }
        "attack" => cmd_attack(&args[1..]),
        "experiments" => cmd_experiments(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "generations" => cmd_generations(),
        "trace" => cmd_trace(&args[1..]),
        _ => usage(),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_spec_parsing() {
        assert_eq!(AttackSpec::parse("double"), Some(AttackSpec::Double));
        assert_eq!(AttackSpec::parse("dma"), Some(AttackSpec::Dma));
        assert_eq!(AttackSpec::parse("many:8"), Some(AttackSpec::Many(8)));
        assert_eq!(AttackSpec::parse("fuzzed:5"), Some(AttackSpec::Fuzzed(5)));
        assert_eq!(AttackSpec::parse("bogus"), None);
        assert_eq!(AttackSpec::parse("many:x"), None);
    }

    fn parse(args: &[&str]) -> std::result::Result<ExperimentArgs, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_experiment_args(&args)
    }

    #[test]
    fn experiment_args_parsing() {
        let parsed = parse(&["--quick", "--jobs", "3", "--filter", "t1,e2", "E10"]).unwrap();
        assert!(parsed.opts.quick);
        assert_eq!(parsed.opts.jobs, 3);
        assert_eq!(
            parsed.opts.filter.as_deref(),
            Some(&["T1".to_string(), "E2".into(), "E10".into()][..])
        );
        assert_eq!(parsed.bench_json, None);
        // --all overrides any id selection.
        assert_eq!(parse(&["--all", "E1"]).unwrap().opts.filter, None);
    }

    #[test]
    fn duplicate_and_overlapping_filter_ids_collapse() {
        // The same id via --filter, a bare id, and a second --filter
        // must select the experiment exactly once.
        let parsed = parse(&["--filter", "T1,E2,t1", "e2", "--filter", "T1"]).unwrap();
        assert_eq!(
            parsed.opts.filter.as_deref(),
            Some(&["T1".to_string(), "E2".into()][..])
        );
        // Empty segments (trailing comma, double comma) are ignored.
        let parsed = parse(&["--filter", "T1,,E2,"]).unwrap();
        assert_eq!(
            parsed.opts.filter.as_deref(),
            Some(&["T1".to_string(), "E2".into()][..])
        );
    }

    #[test]
    fn jobs_zero_is_an_error() {
        let err = parse(&["--jobs", "0"]).unwrap_err();
        assert!(err.contains("positive integer"), "got: {err}");
        // As are a missing and a non-numeric value.
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn unknown_experiment_ids_are_an_error() {
        let err = parse(&["--filter", "T1,E99"]).unwrap_err();
        assert!(err.contains("unknown experiment id 'E99'"), "got: {err}");
        // The message lists the valid ids so the fix is self-evident.
        assert!(err.contains("T1") && err.contains("E11"), "got: {err}");
        // Bare ids get the same validation as --filter values.
        assert!(parse(&["BOGUS"]).is_err());
        // ...but --all does not mask a bad explicit id.
        assert!(parse(&["--all", "BOGUS"]).is_err());
    }

    #[test]
    fn unknown_flags_and_missing_values_are_errors() {
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        assert!(parse(&["--filter"]).is_err());
        assert!(parse(&["--bench-json"]).is_err());
    }

    #[test]
    fn faults_strict_and_step_budget_parsing() {
        let fixture = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/fixtures/chaos-plan.json"
        );
        let parsed = parse(&["--faults", fixture, "--strict", "--step-budget", "5000000"]).unwrap();
        assert!(parsed.strict);
        assert_eq!(parsed.opts.step_budget, Some(5_000_000));
        let plan = parsed.opts.faults.expect("plan loaded");
        assert_eq!(plan.seed, 3203334829);
        assert!(!plan.is_inert());
        // Defaults: no plan, no budget, not strict.
        let plain = parse(&["T1"]).unwrap();
        assert!(plain.opts.faults.is_none());
        assert_eq!(plain.opts.step_budget, None);
        assert!(!plain.strict);
        // A missing file, a malformed plan, and a zero budget are
        // errors at parse time, not at run time.
        assert!(parse(&["--faults", "/no/such/plan.json"])
            .unwrap_err()
            .contains("cannot read"));
        assert!(parse(&["--faults"]).is_err());
        assert!(parse(&["--step-budget", "0"])
            .unwrap_err()
            .contains("positive"));
    }

    #[test]
    fn bench_json_path_is_captured() {
        let parsed = parse(&["--bench-json", "out/bench.json", "T1"]).unwrap();
        assert_eq!(
            parsed.bench_json.as_deref(),
            Some(std::path::Path::new("out/bench.json"))
        );
    }

    #[test]
    fn out_flag_splits_off_cleanly() {
        let args: Vec<String> = ["--out", "run.trace", "--quick", "T1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (out, rest) = split_out_flag(&args).unwrap();
        assert_eq!(out.as_deref(), Some(Path::new("run.trace")));
        assert_eq!(rest, ["--quick", "T1"]);
        // The remainder still parses as experiments flags.
        let parsed = parse_experiment_args(&rest).unwrap();
        assert!(parsed.opts.quick);
        // A later --out wins; a trailing bare --out is an error.
        let args: Vec<String> = ["--out", "a", "--out", "b"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            split_out_flag(&args).unwrap().0.as_deref(),
            Some(Path::new("b"))
        );
        let args: Vec<String> = vec!["--out".into()];
        assert!(split_out_flag(&args).is_err());
        // No --out at all: everything passes through.
        let args: Vec<String> = vec!["T1".into()];
        assert_eq!(
            split_out_flag(&args).unwrap(),
            (None, vec!["T1".to_string()])
        );
    }

    #[test]
    fn defense_parsing_matches_catalog() {
        for d in DefenseKind::catalog(100) {
            assert_eq!(parse_defense(d.name(), 100), Some(d));
        }
        assert_eq!(parse_defense("nope", 100), None);
    }
}
