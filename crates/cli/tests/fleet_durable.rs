//! End-to-end durability and supervision tests against the real
//! binary: kill the process (SIGKILL/SIGINT) and resume, and drive
//! the multi-process supervisor through its fault matrix with the
//! deterministic env-var fault hooks.

#![cfg(unix)]

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hammertime-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htcli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const FLEET: &[&str] = &["fleet", "run", "--machines", "12", "--epochs", "3"];

/// Stdout of an uninterrupted reference run (the population table).
fn reference_stdout(extra: &[&str]) -> Vec<u8> {
    let out = cli()
        .args(FLEET)
        .args(extra)
        .stderr(Stdio::null())
        .output()
        .unwrap();
    assert!(out.status.success(), "reference run failed");
    out.stdout
}

/// Waits until the durable journal holds at least one committed byte
/// past its header, so a signal lands mid-run, not pre-run.
fn wait_for_journal(dir: &std::path::Path) {
    let journal = dir.join("epochs.htjl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if std::fs::metadata(&journal)
            .map(|m| m.len() > 16)
            .unwrap_or(false)
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("journal never appeared in {}", dir.display());
}

/// Satellite (e) in miniature + acceptance: SIGKILL a durable run
/// mid-epoch, resume under a different `--jobs`, and the final table
/// and JSON report are byte-identical to an uninterrupted run.
#[test]
fn sigkill_and_resume_is_byte_identical() {
    let dir = tmpdir("sigkill");
    let slow: &[&str] = &["fleet", "run", "--machines", "40", "--epochs", "30"];
    let ref_json = dir.join("ref.json");
    let out = cli()
        .args(slow)
        .args(["--jobs", "2", "--json", ref_json.to_str().unwrap()])
        .stderr(Stdio::null())
        .output()
        .unwrap();
    assert!(out.status.success());
    let reference = out.stdout;

    let run_dir = dir.join("run");
    let mut child = cli()
        .args(slow)
        .args(["--jobs", "2", "--durable", run_dir.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_for_journal(&run_dir);
    child.kill().unwrap(); // SIGKILL: no destructors, no flush
    child.wait().unwrap();

    let resumed_json = dir.join("resumed.json");
    let out = cli()
        .args(slow)
        .args([
            "--jobs",
            "4",
            "--resume",
            run_dir.to_str().unwrap(),
            "--json",
            resumed_json.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, reference, "resumed table diverges");
    assert_eq!(
        std::fs::read(&ref_json).unwrap(),
        std::fs::read(&resumed_json).unwrap(),
        "resumed JSON report diverges"
    );
}

/// Satellite (a): SIGINT finishes the epoch in flight, journals a
/// clean stop, exits 130 — and the resumed run completes the rest
/// byte-identically.
#[test]
fn sigint_stops_gracefully_with_code_130_and_resumes() {
    let dir = tmpdir("sigint");
    let slow: &[&str] = &["fleet", "run", "--machines", "40", "--epochs", "30"];
    let reference = {
        let out = cli().args(slow).stderr(Stdio::null()).output().unwrap();
        assert!(out.status.success());
        out.stdout
    };

    let run_dir = dir.join("run");
    let mut child = cli()
        .args(slow)
        .args(["--durable", run_dir.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    wait_for_journal(&run_dir);
    let status = Command::new("kill")
        .args(["-INT", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -INT failed");
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(130), "graceful stop exits 130");

    let out = cli()
        .args(slow)
        .args(["--resume", run_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("stopped cleanly"),
        "resume should see the clean-stop marker: {stderr}"
    );
    assert_eq!(out.stdout, reference, "post-SIGINT resume diverges");
}

/// A healthy supervised (multi-process) run prints the same bytes as
/// the in-process runner.
#[test]
fn supervised_run_matches_in_process() {
    let reference = reference_stdout(&[]);
    let out = cli()
        .args(FLEET)
        .args(["--supervise", "3", "--backoff-ms", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "supervised run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, reference);
}

/// Fault matrix: a worker that crashes once is restarted (with its
/// completed epochs replayed) and the fleet output is unaffected.
#[test]
fn crashed_worker_restarts_and_output_is_unaffected() {
    let dir = tmpdir("crash-once");
    let reference = reference_stdout(&[]);
    let marker = dir.join("crashed.marker");
    let out = cli()
        .args(FLEET)
        .args(["--supervise", "3", "--backoff-ms", "10"])
        .env(
            "HAMMERTIME_FLEET_CRASH_ONCE",
            format!("5:2:{}", marker.display()),
        )
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(marker.exists(), "the crash hook must actually have fired");
    assert_eq!(out.stdout, reference, "crash+restart changed the output");
}

/// Fault matrix: a hung worker misses its heartbeat deadline, is
/// killed and restarted, and the fleet output is unaffected.
#[test]
fn hung_worker_is_killed_restarted_and_output_is_unaffected() {
    let dir = tmpdir("hang-once");
    let reference = reference_stdout(&[]);
    let marker = dir.join("hung.marker");
    let out = cli()
        .args(FLEET)
        .args([
            "--supervise",
            "3",
            "--hb-timeout-ms",
            "400",
            "--backoff-ms",
            "10",
        ])
        .env(
            "HAMMERTIME_FLEET_HANG_ONCE",
            format!("7:1:{}", marker.display()),
        )
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(marker.exists(), "the hang hook must actually have fired");
    assert_eq!(out.stdout, reference, "hang+restart changed the output");
}

/// Fault matrix: a machine that kills its worker on every attempt is
/// quarantined after K strikes; siblings complete and the row is a
/// structured `quarantined` failure with progress attribution.
#[test]
fn always_crashing_machine_is_quarantined_and_siblings_survive() {
    let out = cli()
        .args(FLEET)
        .args([
            "--supervise",
            "3",
            "--quarantine-after",
            "2",
            "--backoff-ms",
            "10",
        ])
        .env("HAMMERTIME_FLEET_CRASH", "5:2")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("machine 5: [quarantined]"),
        "expected a quarantined failure row, got:\n{stderr}"
    );
    assert!(
        stderr.contains("reached epoch 1"),
        "quarantine row must attribute last completed progress:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("population of 12 machines"),
        "siblings must still produce the population table:\n{stdout}"
    );
}
