//! Internal row remapping.
//!
//! DRAM devices occasionally remap logically-adjacent rows to
//! different internal locations (redundancy repair, vendor layout
//! quirks — paper §2.1). Disturbance physics follow *internal*
//! adjacency, so a defense that reasons about logical row numbers
//! without accounting for remaps protects the wrong rows. The paper
//! notes internal adjacency can be recovered from software by observing
//! which hammer attacks succeed; experiment E7 reproduces that
//! inference against this model.
//!
//! The model applies a seeded set of pairwise transpositions to a
//! fraction of rows per bank, which matches the "sparse repair remap"
//! character of real devices while keeping the permutation involutive
//! (its own inverse) and cheap to invert.

use hammertime_common::DetRng;
use serde::{Deserialize, Serialize};

/// Remapping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemapConfig {
    /// Fraction of rows (0.0–1.0) involved in a transposition.
    pub remap_fraction: f64,
    /// Whether transpositions may cross subarray boundaries. Real
    /// repairs stay within a subarray (spare rows are subarray-local),
    /// which also keeps the paper's subarray-isolation story sound.
    pub within_subarray: bool,
}

impl RemapConfig {
    /// No remapping: logical order is internal order.
    pub fn identity() -> RemapConfig {
        RemapConfig {
            remap_fraction: 0.0,
            within_subarray: true,
        }
    }

    /// A realistic light remap: ~6% of rows swapped, subarray-local.
    pub fn sparse() -> RemapConfig {
        RemapConfig {
            remap_fraction: 0.06,
            within_subarray: true,
        }
    }
}

/// A per-bank logical→internal row permutation.
#[derive(Debug, Clone)]
pub struct RowRemap {
    /// `forward[logical] = internal`. Involutive by construction.
    forward: Vec<u32>,
}

impl RowRemap {
    /// Builds the permutation for one bank of `rows` rows organized in
    /// subarrays of `rows_per_subarray`.
    pub fn new(
        rows: u32,
        rows_per_subarray: u32,
        config: RemapConfig,
        rng: &mut DetRng,
    ) -> RowRemap {
        assert!(rows > 0 && rows_per_subarray > 0 && rows.is_multiple_of(rows_per_subarray));
        let mut forward: Vec<u32> = (0..rows).collect();
        let swaps = ((rows as f64 * config.remap_fraction) / 2.0).round() as u32;
        for _ in 0..swaps {
            let a = rng.below(rows as u64) as u32;
            let b = if config.within_subarray {
                let sa = a / rows_per_subarray;
                sa * rows_per_subarray + rng.below(rows_per_subarray as u64) as u32
            } else {
                rng.below(rows as u64) as u32
            };
            // Only swap rows that are still in their home positions, so
            // the permutation stays a product of disjoint transpositions
            // (hence involutive).
            if forward[a as usize] == a && forward[b as usize] == b && a != b {
                forward.swap(a as usize, b as usize);
            }
        }
        RowRemap { forward }
    }

    /// An identity permutation over `rows` rows.
    pub fn identity(rows: u32) -> RowRemap {
        RowRemap {
            forward: (0..rows).collect(),
        }
    }

    /// Logical → internal.
    #[inline]
    pub fn to_internal(&self, logical: u32) -> u32 {
        self.forward[logical as usize]
    }

    /// Internal → logical. Involutive permutations are their own
    /// inverse.
    #[inline]
    pub fn to_logical(&self, internal: u32) -> u32 {
        self.forward[internal as usize]
    }

    /// Number of rows whose internal position differs from their
    /// logical one.
    pub fn remapped_count(&self) -> usize {
        self.forward
            .iter()
            .enumerate()
            .filter(|(i, &v)| *i as u32 != v)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_config_maps_straight_through() {
        let mut rng = DetRng::new(1);
        let r = RowRemap::new(64, 16, RemapConfig::identity(), &mut rng);
        for i in 0..64 {
            assert_eq!(r.to_internal(i), i);
            assert_eq!(r.to_logical(i), i);
        }
        assert_eq!(r.remapped_count(), 0);
    }

    #[test]
    fn sparse_remap_is_a_permutation_and_involutive() {
        let mut rng = DetRng::new(2);
        let r = RowRemap::new(256, 64, RemapConfig::sparse(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..256 {
            let internal = r.to_internal(i);
            assert!(seen.insert(internal), "not a permutation");
            assert_eq!(r.to_logical(internal), i, "not involutive");
        }
        assert!(r.remapped_count() > 0, "sparse remap should move rows");
    }

    #[test]
    fn within_subarray_swaps_stay_local() {
        let mut rng = DetRng::new(3);
        let config = RemapConfig {
            remap_fraction: 0.5,
            within_subarray: true,
        };
        let rows_per_subarray = 32;
        let r = RowRemap::new(128, rows_per_subarray, config, &mut rng);
        for i in 0..128u32 {
            assert_eq!(
                i / rows_per_subarray,
                r.to_internal(i) / rows_per_subarray,
                "row {i} escaped its subarray"
            );
        }
    }

    #[test]
    fn deterministic_across_same_seed() {
        let mk = |seed| {
            let mut rng = DetRng::new(seed);
            RowRemap::new(128, 32, RemapConfig::sparse(), &mut rng)
        };
        let a = mk(7);
        let b = mk(7);
        for i in 0..128 {
            assert_eq!(a.to_internal(i), b.to_internal(i));
        }
    }
}
