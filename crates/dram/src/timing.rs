//! DDR timing parameters.
//!
//! All values are in command-clock cycles (see
//! [`hammertime_common::time`]). Presets are derived from JEDEC-style
//! datasheet values for representative speed grades; what matters for
//! the evaluation is that the *ratios* between row cycle time, burst
//! time, refresh interval, and refresh window are realistic, since they
//! determine achievable hammer rates (ACTs per refresh window) and the
//! cost of defense-induced extra ACTs/REFs.

use hammertime_common::time::ns_to_cycles;
use serde::{Deserialize, Serialize};

/// Timing constraints for one DRAM module, in command-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Command clock frequency in MHz (for reporting only; constraints
    /// below are already in cycles).
    pub clock_mhz: u64,
    /// ACT-to-RD/WR delay (row activation latency).
    pub t_rcd: u64,
    /// PRE-to-ACT delay (precharge latency).
    pub t_rp: u64,
    /// ACT-to-PRE minimum (row must stay open this long).
    pub t_ras: u64,
    /// ACT-to-ACT same bank (row cycle time); `>= t_ras + t_rp`.
    pub t_rc: u64,
    /// ACT-to-ACT different bank, different bank group.
    pub t_rrd_s: u64,
    /// ACT-to-ACT different bank, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window: at most 4 ACTs per rank in any window of
    /// this many cycles.
    pub t_faw: u64,
    /// RD-to-PRE minimum.
    pub t_rtp: u64,
    /// Write recovery: end of write burst to PRE.
    pub t_wr: u64,
    /// Write-to-read turnaround.
    pub t_wtr: u64,
    /// CAS (read) latency: RD to first data.
    pub cl: u64,
    /// CAS write latency: WR to first data.
    pub cwl: u64,
    /// Burst length in cycles on the data bus (BL8 at DDR = 4 clocks).
    pub t_bl: u64,
    /// Refresh command duration (rank busy).
    pub t_rfc: u64,
    /// Average refresh command interval.
    pub t_refi: u64,
    /// Refresh window: every row must be refreshed at least once per
    /// window (typically 64 ms).
    pub t_refw: u64,
}

impl TimingParams {
    /// DDR4-2400 (1200 MHz command clock), 17-17-17-ish grade.
    pub fn ddr4_2400() -> TimingParams {
        let mhz = 1200;
        TimingParams {
            clock_mhz: mhz,
            t_rcd: ns_to_cycles(14.16, mhz),
            t_rp: ns_to_cycles(14.16, mhz),
            t_ras: ns_to_cycles(32.0, mhz),
            t_rc: ns_to_cycles(46.16, mhz),
            t_rrd_s: ns_to_cycles(3.3, mhz),
            t_rrd_l: ns_to_cycles(4.9, mhz),
            t_faw: ns_to_cycles(21.0, mhz),
            t_rtp: ns_to_cycles(7.5, mhz),
            t_wr: ns_to_cycles(15.0, mhz),
            t_wtr: ns_to_cycles(7.5, mhz),
            cl: 17,
            cwl: 12,
            t_bl: 4,
            t_rfc: ns_to_cycles(350.0, mhz),
            t_refi: ns_to_cycles(7_800.0, mhz),
            t_refw: ns_to_cycles(64_000_000.0, mhz),
        }
    }

    /// DDR3-1600 (800 MHz command clock).
    pub fn ddr3_1600() -> TimingParams {
        let mhz = 800;
        TimingParams {
            clock_mhz: mhz,
            t_rcd: ns_to_cycles(13.75, mhz),
            t_rp: ns_to_cycles(13.75, mhz),
            t_ras: ns_to_cycles(35.0, mhz),
            t_rc: ns_to_cycles(48.75, mhz),
            t_rrd_s: ns_to_cycles(6.0, mhz),
            t_rrd_l: ns_to_cycles(6.0, mhz),
            t_faw: ns_to_cycles(30.0, mhz),
            t_rtp: ns_to_cycles(7.5, mhz),
            t_wr: ns_to_cycles(15.0, mhz),
            t_wtr: ns_to_cycles(7.5, mhz),
            cl: 11,
            cwl: 8,
            t_bl: 4,
            t_rfc: ns_to_cycles(260.0, mhz),
            t_refi: ns_to_cycles(7_800.0, mhz),
            t_refw: ns_to_cycles(64_000_000.0, mhz),
        }
    }

    /// DDR5-4800 (2400 MHz command clock).
    pub fn ddr5_4800() -> TimingParams {
        let mhz = 2400;
        TimingParams {
            clock_mhz: mhz,
            t_rcd: ns_to_cycles(14.16, mhz),
            t_rp: ns_to_cycles(14.16, mhz),
            t_ras: ns_to_cycles(32.0, mhz),
            t_rc: ns_to_cycles(46.16, mhz),
            t_rrd_s: ns_to_cycles(2.5, mhz),
            t_rrd_l: ns_to_cycles(5.0, mhz),
            t_faw: ns_to_cycles(13.333, mhz),
            t_rtp: ns_to_cycles(7.5, mhz),
            t_wr: ns_to_cycles(30.0, mhz),
            t_wtr: ns_to_cycles(10.0, mhz),
            cl: 40,
            cwl: 38,
            t_bl: 8,
            t_rfc: ns_to_cycles(295.0, mhz),
            t_refi: ns_to_cycles(3_900.0, mhz),
            t_refw: ns_to_cycles(32_000_000.0, mhz),
        }
    }

    /// A deliberately compressed timing set for unit tests: small round
    /// numbers so tests can assert exact cycles, and a tiny refresh
    /// window so refresh behaviour is exercised quickly.
    pub fn tiny_test() -> TimingParams {
        TimingParams {
            clock_mhz: 1000,
            t_rcd: 4,
            t_rp: 4,
            t_ras: 10,
            t_rc: 14,
            t_rrd_s: 2,
            t_rrd_l: 3,
            t_faw: 12,
            t_rtp: 3,
            t_wr: 5,
            t_wtr: 3,
            cl: 5,
            cwl: 4,
            t_bl: 2,
            t_rfc: 20,
            t_refi: 100,
            t_refw: 800,
        }
    }

    /// Like [`TimingParams::tiny_test`] but with a realistic
    /// window-to-MAC ratio: the refresh window holds ~570 row cycles
    /// (vs. 57), matching the real-DDR4 property that an attacker can
    /// fit tens of MACs worth of ACTs into one window. Used by the
    /// machine-level experiments.
    pub fn tiny_wide() -> TimingParams {
        TimingParams {
            t_refi: 200,
            t_refw: 8_000,
            ..TimingParams::tiny_test()
        }
    }

    /// Checks internal consistency of the parameter set.
    pub fn validate(&self) -> hammertime_common::Result<()> {
        use hammertime_common::Error;
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(Error::Config(format!(
                "tRC ({}) < tRAS ({}) + tRP ({})",
                self.t_rc, self.t_ras, self.t_rp
            )));
        }
        if self.t_refi >= self.t_refw {
            return Err(Error::Config(format!(
                "tREFI ({}) >= tREFW ({})",
                self.t_refi, self.t_refw
            )));
        }
        if self.t_rrd_l < self.t_rrd_s {
            return Err(Error::Config(format!(
                "tRRD_L ({}) < tRRD_S ({})",
                self.t_rrd_l, self.t_rrd_s
            )));
        }
        for (name, v) in [
            ("t_rcd", self.t_rcd),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_rc", self.t_rc),
            ("t_bl", self.t_bl),
            ("t_rfc", self.t_rfc),
            ("t_refi", self.t_refi),
            ("t_refw", self.t_refw),
        ] {
            if v == 0 {
                return Err(Error::Config(format!("timing field {name} is zero")));
            }
        }
        Ok(())
    }

    /// The number of REF commands the controller issues per refresh
    /// window (`tREFW / tREFI`), which is also the number of refresh
    /// groups the device cycles through.
    pub fn refs_per_window(&self) -> u64 {
        self.t_refw / self.t_refi
    }

    /// An upper bound on single-bank ACTs per refresh window — the
    /// budget a hammering attacker works with (paper §2.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use hammertime_dram::timing::TimingParams;
    ///
    /// // DDR4-2400 sustains on the order of a million single-bank
    /// // ACTs per 64 ms window — comfortably above published MACs,
    /// // which is why Rowhammer is exploitable at all.
    /// let t = TimingParams::ddr4_2400();
    /// assert!(t.max_acts_per_window() > 1_000_000);
    /// ```
    pub fn max_acts_per_window(&self) -> u64 {
        self.t_refw / self.t_rc
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        TimingParams::ddr3_1600().validate().unwrap();
        TimingParams::ddr4_2400().validate().unwrap();
        TimingParams::ddr5_4800().validate().unwrap();
        TimingParams::tiny_test().validate().unwrap();
        TimingParams::tiny_wide().validate().unwrap();
    }

    #[test]
    fn validation_catches_inconsistency() {
        let mut t = TimingParams::tiny_test();
        t.t_rc = 5; // < tRAS + tRP = 14
        assert!(t.validate().is_err());

        let mut t = TimingParams::tiny_test();
        t.t_refi = t.t_refw;
        assert!(t.validate().is_err());

        let mut t = TimingParams::tiny_test();
        t.t_rrd_l = 1; // < tRRD_S = 2
        assert!(t.validate().is_err());

        let mut t = TimingParams::tiny_test();
        t.t_rcd = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn refresh_arithmetic() {
        let t = TimingParams::tiny_test();
        assert_eq!(t.refs_per_window(), 8);
        assert_eq!(t.max_acts_per_window(), 800 / 14);
    }

    #[test]
    fn ddr4_hammer_budget_matches_reality() {
        // ~64 ms / ~46 ns row cycle ~= 1.39 M ACTs; the classic
        // DDR3-era MAC of 139 K is 10x under budget, so attacks fit
        // easily inside one refresh window.
        let t = TimingParams::ddr4_2400();
        let budget = t.max_acts_per_window();
        assert!(budget > 1_300_000 && budget < 1_500_000, "budget {budget}");
    }
}
