//! The DRAM disturbance (Rowhammer) fault model.
//!
//! Physics recap (paper §2.1–2.2): every ACT of an *aggressor* row
//! electromagnetically disturbs physically-proximate rows in the same
//! subarray, up to `blast_radius` rows away. A *victim* row accumulates
//! disturbance ("hammer pressure") from all its aggressors since the
//! victim's own last refresh; once accumulated pressure exceeds the
//! module's maximum activation count (MAC), bits in the victim may
//! flip. Refreshing the victim — via the regular REF cycle, an ACT of
//! the victim itself, the proposed `refresh` instruction, or
//! REF_NEIGHBORS — resets its pressure.
//!
//! The model is parameterised by a [`DisturbanceProfile`]. The presets
//! follow the *shape* of published measurements (Kim et al. ISCA'20):
//! successive DRAM generations have order-of-magnitude lower MACs and
//! wider blast radii, which is the worsening-problem premise of the
//! paper's §3.

use hammertime_common::time::Cycle;
use hammertime_common::DomainId;
use serde::{Deserialize, Serialize};

/// Disturbance parameters for one DRAM module generation.
///
/// # Examples
///
/// ```
/// use hammertime_dram::disturb::DisturbanceProfile;
///
/// let old = DisturbanceProfile::ddr3_2014();
/// let new = DisturbanceProfile::ddr4_2020();
/// // The Rowhammer problem worsens: newer modules flip with far
/// // fewer activations and disturb more distant rows.
/// assert!(new.mac < old.mac / 10);
/// assert!(new.blast_radius > old.blast_radius);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceProfile {
    /// Maximum activation count: hammer pressure a victim tolerates
    /// within a refresh window before bits may flip.
    pub mac: u64,
    /// How many rows to each side of an aggressor are disturbed.
    pub blast_radius: u32,
    /// Per-distance attenuation: an ACT at distance `d` contributes
    /// `decay^(d-1)` pressure. In `(0, 1]`.
    pub distance_decay: f64,
    /// Probability that each threshold crossing beyond the MAC flips a
    /// bit (see [`VictimState::add_pressure`]).
    pub flip_prob: f64,
    /// Fraction of the MAC between successive flip opportunities once
    /// pressure exceeds the MAC.
    pub overshoot_step: f64,
}

impl DisturbanceProfile {
    /// DDR3-era module (Kim et al. ISCA'14 measurements): high MAC,
    /// immediate neighbors only.
    pub fn ddr3_2014() -> DisturbanceProfile {
        DisturbanceProfile {
            mac: 139_000,
            blast_radius: 1,
            distance_decay: 0.5,
            flip_prob: 0.5,
            overshoot_step: 0.05,
        }
    }

    /// First-generation DDR4 (c. 2017).
    pub fn ddr4_2017() -> DisturbanceProfile {
        DisturbanceProfile {
            mac: 50_000,
            blast_radius: 2,
            distance_decay: 0.4,
            flip_prob: 0.5,
            overshoot_step: 0.05,
        }
    }

    /// LPDDR4 (c. 2019).
    pub fn lpddr4_2019() -> DisturbanceProfile {
        DisturbanceProfile {
            mac: 16_000,
            blast_radius: 2,
            distance_decay: 0.45,
            flip_prob: 0.55,
            overshoot_step: 0.05,
        }
    }

    /// Recent DDR4 (c. 2020): MACs near 10 K, blast radius up to 4.
    pub fn ddr4_2020() -> DisturbanceProfile {
        DisturbanceProfile {
            mac: 10_000,
            blast_radius: 4,
            distance_decay: 0.5,
            flip_prob: 0.6,
            overshoot_step: 0.05,
        }
    }

    /// Extrapolated future node (the paper's "worsening" trend): MAC
    /// under 5 K, blast radius 6.
    pub fn future_node() -> DisturbanceProfile {
        DisturbanceProfile {
            mac: 4_800,
            blast_radius: 6,
            distance_decay: 0.55,
            flip_prob: 0.65,
            overshoot_step: 0.05,
        }
    }

    /// A profile scaled down by `factor` for fast tests/benches: the
    /// MAC shrinks, everything else is preserved, so attack/defense
    /// *shapes* are unchanged while simulations run `factor`x faster.
    pub fn scaled_down(&self, factor: u64) -> DisturbanceProfile {
        DisturbanceProfile {
            mac: (self.mac / factor).max(1),
            ..*self
        }
    }

    /// The five generation presets, oldest first, with display names —
    /// the sweep axis of experiment E1.
    pub fn generations() -> Vec<(&'static str, DisturbanceProfile)> {
        vec![
            ("DDR3-2014", Self::ddr3_2014()),
            ("DDR4-2017", Self::ddr4_2017()),
            ("LPDDR4-2019", Self::lpddr4_2019()),
            ("DDR4-2020", Self::ddr4_2020()),
            ("Future", Self::future_node()),
        ]
    }

    /// Pressure contributed to a victim at `distance` rows from the
    /// aggressor (0 outside the blast radius).
    #[inline]
    pub fn pressure_at(&self, distance: u32) -> f64 {
        if distance == 0 || distance > self.blast_radius {
            return 0.0;
        }
        self.distance_decay.powi(distance as i32 - 1)
    }

    /// Checks parameter sanity.
    pub fn validate(&self) -> hammertime_common::Result<()> {
        use hammertime_common::Error;
        if self.mac == 0 {
            return Err(Error::Config("mac is zero".into()));
        }
        if self.blast_radius == 0 {
            return Err(Error::Config("blast_radius is zero".into()));
        }
        if !(self.distance_decay > 0.0 && self.distance_decay <= 1.0) {
            return Err(Error::Config(format!(
                "distance_decay {} outside (0,1]",
                self.distance_decay
            )));
        }
        if !(0.0..=1.0).contains(&self.flip_prob) {
            return Err(Error::Config(format!(
                "flip_prob {} outside [0,1]",
                self.flip_prob
            )));
        }
        if self.overshoot_step <= 0.0 || self.overshoot_step.is_nan() {
            return Err(Error::Config("overshoot_step must be positive".into()));
        }
        Ok(())
    }
}

impl Default for DisturbanceProfile {
    fn default() -> Self {
        DisturbanceProfile::ddr4_2020()
    }
}

/// Precomputed per-distance pressure weights for one profile.
///
/// [`DisturbanceProfile::pressure_at`] recomputes `decay^(d-1)` on
/// every call; the ACT hot loop evaluates it for every victim of every
/// activation. The table holds the *identical* `powi` results computed
/// once, so the fast path stays bit-exact with the formula.
#[derive(Debug, Clone)]
pub struct PressureTable {
    weights: Vec<f64>,
}

impl PressureTable {
    /// Tabulates weights for distances `1..=blast_radius`.
    pub fn new(profile: &DisturbanceProfile) -> PressureTable {
        PressureTable {
            weights: (1..=profile.blast_radius)
                .map(|d| profile.pressure_at(d))
                .collect(),
        }
    }

    /// Pressure at `distance` rows from the aggressor (0 outside the
    /// blast radius), matching [`DisturbanceProfile::pressure_at`]
    /// bit-for-bit.
    #[inline]
    pub fn at(&self, distance: u32) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        self.weights
            .get((distance - 1) as usize)
            .copied()
            .unwrap_or(0.0)
    }
}

/// Per-victim-row disturbance bookkeeping.
///
/// Lives inside each bank's row-state table. `pressure` accumulates
/// weighted aggressor ACTs since this row's last refresh;
/// `flip_opportunities` counts how many overshoot thresholds have been
/// crossed so far (so each crossing yields at most one Bernoulli flip
/// draw, keeping flip counts monotone in pressure and independent of
/// ACT batching).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct VictimState {
    /// Accumulated hammer pressure since last refresh.
    pub pressure: f64,
    /// Overshoot thresholds already consumed (see `add_pressure`).
    pub flip_opportunities: u32,
    /// When this row was last refreshed (REF slot, own ACT, targeted
    /// refresh).
    pub last_refresh: Cycle,
}

impl VictimState {
    /// Adds `amount` pressure and returns how many *new* flip
    /// opportunities this crossing creates.
    ///
    /// Opportunities are the integer thresholds
    /// `mac * (1 + k * overshoot_step)`, `k = 0, 1, 2, ...`: the first
    /// opportunity arises when pressure first exceeds the MAC, then one
    /// more per additional `mac * overshoot_step` of pressure. The
    /// caller draws one Bernoulli(`flip_prob`) bit flip per
    /// opportunity.
    pub fn add_pressure(&mut self, amount: f64, profile: &DisturbanceProfile) -> u32 {
        debug_assert!(amount >= 0.0);
        self.pressure += amount;
        let mac = profile.mac as f64;
        if self.pressure <= mac {
            return 0;
        }
        let step = mac * profile.overshoot_step;
        // Total opportunities warranted by current pressure.
        let total = 1 + ((self.pressure - mac) / step) as u32;
        let fresh = total.saturating_sub(self.flip_opportunities);
        self.flip_opportunities = total;
        fresh
    }

    /// Resets disturbance state; called whenever the row is refreshed.
    pub fn refresh(&mut self, now: Cycle) {
        self.pressure = 0.0;
        self.flip_opportunities = 0;
        self.last_refresh = now;
    }
}

/// One recorded bit-flip event: the evaluation's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlipEvent {
    /// When the flip occurred.
    pub time: Cycle,
    /// Flat bank index of the victim.
    pub flat_bank: usize,
    /// Victim row (in-bank index, internal/physical ordering).
    pub victim_row: u32,
    /// The aggressor row whose ACT tipped the victim over.
    pub aggressor_row: u32,
    /// Bit index within the row that flipped.
    pub bit: u64,
    /// Trust domain owning the victim row's frame at flip time, if the
    /// caller annotated ownership (`None` for unowned/unallocated).
    pub victim_domain: Option<DomainId>,
    /// Trust domain that issued the aggressor ACT, if known.
    pub aggressor_domain: Option<DomainId>,
}

impl FlipEvent {
    /// Returns `true` if the flip crossed trust-domain boundaries — the
    /// multi-tenant disaster case the paper opens with (§1).
    pub fn is_cross_domain(&self) -> bool {
        match (self.victim_domain, self.aggressor_domain) {
            (Some(v), Some(a)) => v != a,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_worsen() {
        let gens = DisturbanceProfile::generations();
        for (_, p) in &gens {
            p.validate().unwrap();
        }
        for w in gens.windows(2) {
            assert!(
                w[1].1.mac <= w[0].1.mac,
                "MAC must not increase across generations"
            );
            assert!(w[1].1.blast_radius >= w[0].1.blast_radius);
        }
    }

    #[test]
    fn pressure_decays_with_distance() {
        let p = DisturbanceProfile::ddr4_2020();
        assert_eq!(p.pressure_at(0), 0.0);
        assert_eq!(p.pressure_at(1), 1.0);
        assert!(p.pressure_at(2) < p.pressure_at(1));
        assert!(p.pressure_at(p.blast_radius) > 0.0);
        assert_eq!(p.pressure_at(p.blast_radius + 1), 0.0);
    }

    #[test]
    fn table_matches_formula_bit_for_bit() {
        for (_, p) in DisturbanceProfile::generations() {
            let table = PressureTable::new(&p);
            for d in 0..=p.blast_radius + 2 {
                assert_eq!(table.at(d).to_bits(), p.pressure_at(d).to_bits());
            }
        }
    }

    #[test]
    fn no_opportunities_below_mac() {
        let p = DisturbanceProfile {
            mac: 100,
            ..DisturbanceProfile::ddr4_2020()
        };
        let mut v = VictimState::default();
        for _ in 0..100 {
            assert_eq!(v.add_pressure(1.0, &p), 0);
        }
        assert_eq!(v.flip_opportunities, 0);
    }

    #[test]
    fn opportunities_scale_with_overshoot() {
        let p = DisturbanceProfile {
            mac: 100,
            overshoot_step: 0.1, // one extra opportunity per 10 pressure beyond MAC
            ..DisturbanceProfile::ddr4_2020()
        };
        let mut v = VictimState::default();
        assert_eq!(v.add_pressure(100.0, &p), 0); // exactly at MAC: none
        assert_eq!(v.add_pressure(1.0, &p), 1); // first crossing
        assert_eq!(v.add_pressure(9.0, &p), 1); // 110 -> second threshold
        assert_eq!(v.add_pressure(20.0, &p), 2); // 130 -> two more
                                                 // Opportunities do not double count.
        assert_eq!(v.add_pressure(0.0, &p), 0);
    }

    #[test]
    fn batched_and_incremental_pressure_agree() {
        let p = DisturbanceProfile {
            mac: 50,
            overshoot_step: 0.05,
            ..DisturbanceProfile::ddr4_2020()
        };
        let mut a = VictimState::default();
        let mut total_a = 0;
        for _ in 0..200 {
            total_a += a.add_pressure(1.0, &p);
        }
        let mut b = VictimState::default();
        let total_b = b.add_pressure(200.0, &p);
        assert_eq!(total_a, total_b);
        assert_eq!(a.flip_opportunities, b.flip_opportunities);
    }

    #[test]
    fn refresh_clears_state() {
        let p = DisturbanceProfile {
            mac: 10,
            ..DisturbanceProfile::ddr4_2020()
        };
        let mut v = VictimState::default();
        v.add_pressure(50.0, &p);
        assert!(v.pressure > 0.0);
        v.refresh(Cycle(123));
        assert_eq!(v.pressure, 0.0);
        assert_eq!(v.flip_opportunities, 0);
        assert_eq!(v.last_refresh, Cycle(123));
        // After refresh the budget starts over.
        assert_eq!(v.add_pressure(10.0, &p), 0);
    }

    #[test]
    fn scaled_profile_preserves_shape() {
        let p = DisturbanceProfile::ddr3_2014().scaled_down(100);
        assert_eq!(p.mac, 1_390);
        assert_eq!(p.blast_radius, DisturbanceProfile::ddr3_2014().blast_radius);
        let tiny = DisturbanceProfile::ddr3_2014().scaled_down(u64::MAX);
        assert_eq!(tiny.mac, 1);
    }

    #[test]
    fn cross_domain_detection() {
        let mk = |v, a| FlipEvent {
            time: Cycle::ZERO,
            flat_bank: 0,
            victim_row: 1,
            aggressor_row: 2,
            bit: 0,
            victim_domain: v,
            aggressor_domain: a,
        };
        assert!(mk(Some(DomainId(1)), Some(DomainId(2))).is_cross_domain());
        assert!(!mk(Some(DomainId(1)), Some(DomainId(1))).is_cross_domain());
        assert!(!mk(None, Some(DomainId(1))).is_cross_domain());
        assert!(!mk(Some(DomainId(1)), None).is_cross_domain());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let base = DisturbanceProfile::ddr4_2020();
        assert!(DisturbanceProfile { mac: 0, ..base }.validate().is_err());
        assert!(DisturbanceProfile {
            blast_radius: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(DisturbanceProfile {
            distance_decay: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(DisturbanceProfile {
            distance_decay: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(DisturbanceProfile {
            flip_prob: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(DisturbanceProfile {
            overshoot_step: 0.0,
            ..base
        }
        .validate()
        .is_err());
    }
}
