//! Command-level DRAM device model with a Rowhammer disturbance fault
//! model.
//!
//! This crate is the lowest substrate of the `hammertime` workspace:
//! a DDR module the memory controller programs with
//! [`command::DdrCommand`]s, enforcing protocol and timing
//! legality, cycling refresh groups, and — the part everything else
//! exists for — accumulating activation-induced disturbance that flips
//! bits in victim rows once aggressors exceed the module's MAC within a
//! refresh window (paper §2).
//!
//! Layers:
//!
//! - [`command`]: the DDR command vocabulary (ACT/PRE/RD/WR/REF plus
//!   the proposed REF_NEIGHBORS).
//! - [`timing`]: JEDEC-style timing parameter sets.
//! - [`bank`]: per-bank FSM and bank-local timing.
//! - [`disturb`]: the parametric Rowhammer model (MAC, blast radius,
//!   per-generation presets).
//! - [`trr`]: the in-DRAM blackbox Target Row Refresh baseline and its
//!   TRRespass-style bypass behaviour.
//! - [`remap`]: internal row remapping (logical vs. internal
//!   adjacency).
//! - [`data`]: sparse row contents with poison (flip) tracking.
//! - [`module`]: the assembled device.
//! - [`replay`]: rebuild and verify a device run from a recorded
//!   command trace (`hammertime-telemetry` events).
//!
//! # Examples
//!
//! ```
//! use hammertime_dram::module::{DramConfig, DramModule};
//! use hammertime_dram::command::DdrCommand;
//! use hammertime_common::geometry::BankId;
//! use hammertime_common::Cycle;
//!
//! // A module that flips after ~10 activations of a neighbor.
//! let mut dram = DramModule::new(DramConfig::test_config(10)).unwrap();
//! let bank = BankId { channel: 0, rank: 0, bank_group: 0, bank: 0 };
//! let mut now = Cycle::ZERO;
//! let mut flips = 0;
//! for _ in 0..40 {
//!     let act = DdrCommand::Act { bank, row: 8 };
//!     now = now.max(dram.earliest(&act));
//!     flips += dram.issue(&act, now).unwrap().flips_generated;
//!     let pre = DdrCommand::Pre { bank };
//!     now = now.max(dram.earliest(&pre));
//!     dram.issue(&pre, now).unwrap();
//! }
//! assert!(flips > 0, "hammering past the MAC flips neighbors");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod command;
pub mod data;
pub mod disturb;
pub mod module;
pub mod remap;
pub mod replay;
pub mod stats;
pub mod timing;
pub mod trr;

pub use command::DdrCommand;
pub use disturb::{DisturbanceProfile, FlipEvent, PressureTable};
pub use module::{BankTiming, CommandOutcome, DramConfig, DramModule};
pub use replay::{replay_records, ReplaySummary};
pub use stats::DramStats;
pub use timing::TimingParams;
pub use trr::{TrrConfig, TrrSamplerKind};
