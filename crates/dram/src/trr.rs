//! In-DRAM Target Row Refresh (TRR): the blackbox vendor mitigation.
//!
//! Real modules ship an undocumented sampler that watches ACTs and,
//! piggybacking on REF commands, refreshes the neighbors of rows it
//! believes are aggressors. TRRespass (Frigo et al., S&P'20 — paper
//! §3) showed these samplers track only a small number `n` of
//! candidate aggressors and are bypassed by hammering more than `n`
//! rows. This module reproduces that behaviour with two sampler
//! policies, so experiment E2 can regenerate the bypass curve.
//!
//! The sampler is per-bank, as on real modules. It sees only what the
//! device sees — row activations — and acts only at REF time, which is
//! exactly why it cannot adapt (the paper's motivation for host-level
//! defenses).

use hammertime_common::DetRng;
use serde::{Deserialize, Serialize};

/// Which sampling structure the device uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrrSamplerKind {
    /// Misra-Gries frequent-elements counters: deterministic, finds
    /// heavy hitters, thrashes when distinct aggressors exceed the
    /// table size.
    MisraGries,
    /// Reservoir sampling of recent activations: probabilistic; under
    /// many-sided attacks each aggressor is selected too rarely.
    Reservoir,
}

/// TRR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrrConfig {
    /// Tracker entries per bank (the `n` TRRespass defeats).
    pub table_size: usize,
    /// Sampler policy.
    pub kind: TrrSamplerKind,
    /// How many tracked aggressors get their neighbors refreshed per
    /// REF command.
    pub targets_per_ref: usize,
    /// How far to each side the device refreshes (its belief about the
    /// blast radius; vendors under-provision this too).
    pub radius: u32,
    /// Internal confidence threshold: an entry only triggers a
    /// targeted refresh once its count reaches this value. This is
    /// the mechanism TRRespass exploits — with more aggressors than
    /// table entries, Misra-Gries thrashing keeps every count below
    /// the threshold and the device never reacts.
    pub min_count: u64,
}

impl TrrConfig {
    /// A vendor-flavored default: 4-entry Misra-Gries, one target per
    /// REF, radius 1, confidence threshold 4.
    pub fn vendor_default() -> TrrConfig {
        TrrConfig {
            table_size: 4,
            kind: TrrSamplerKind::MisraGries,
            targets_per_ref: 1,
            radius: 1,
            min_count: 4,
        }
    }
}

/// One bank's sampler state.
#[derive(Debug, Clone)]
enum Sampler {
    MisraGries {
        /// (row, count) pairs, at most `table_size`.
        entries: Vec<(u32, u64)>,
    },
    Reservoir {
        slots: Vec<u32>,
        seen: u64,
    },
}

/// Per-bank TRR engine.
#[derive(Debug, Clone)]
pub struct TrrEngine {
    config: TrrConfig,
    samplers: Vec<Sampler>,
    rng: DetRng,
    /// Total targeted refreshes performed (stats).
    pub targeted_refreshes: u64,
    /// Total ACTs fed to the samplers (stats). The memory controller
    /// reads this around each demand ACT to attribute sampler work to
    /// the issuing tenant.
    pub samples: u64,
}

impl TrrEngine {
    /// Creates a TRR engine covering `banks` banks.
    pub fn new(config: TrrConfig, banks: usize, rng: DetRng) -> TrrEngine {
        let mk = || match config.kind {
            TrrSamplerKind::MisraGries => Sampler::MisraGries {
                entries: Vec::with_capacity(config.table_size),
            },
            TrrSamplerKind::Reservoir => Sampler::Reservoir {
                slots: Vec::with_capacity(config.table_size),
                seen: 0,
            },
        };
        TrrEngine {
            config,
            samplers: (0..banks).map(|_| mk()).collect(),
            rng,
            targeted_refreshes: 0,
            samples: 0,
        }
    }

    /// The configured radius (how far the device refreshes around a
    /// suspected aggressor).
    pub fn radius(&self) -> u32 {
        self.config.radius
    }

    /// Feeds one observed ACT to the bank's sampler.
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` exceeds the bank count given at
    /// construction.
    pub fn observe_act(&mut self, flat_bank: usize, row: u32) {
        self.samples += 1;
        let cap = self.config.table_size;
        match &mut self.samplers[flat_bank] {
            Sampler::MisraGries { entries } => {
                if let Some(e) = entries.iter_mut().find(|(r, _)| *r == row) {
                    e.1 += 1;
                } else if entries.len() < cap {
                    entries.push((row, 1));
                } else {
                    // Classic Misra-Gries: decrement everyone; drop zeros.
                    for e in entries.iter_mut() {
                        e.1 -= 1;
                    }
                    entries.retain(|(_, c)| *c > 0);
                }
            }
            Sampler::Reservoir { slots, seen } => {
                *seen += 1;
                if slots.len() < cap {
                    slots.push(row);
                } else {
                    // Reservoir sampling: replace a slot with prob cap/seen.
                    let j = self.rng.below(*seen);
                    if (j as usize) < cap {
                        slots[j as usize] = row;
                    }
                }
            }
        }
    }

    /// Called when the rank receives a REF: returns, for each bank in
    /// `banks`, the suspected-aggressor rows whose neighbors the device
    /// will refresh during this REF. Consumes the selected entries.
    pub fn on_ref(&mut self, banks: &[usize]) -> Vec<(usize, Vec<u32>)> {
        let mut out = Vec::new();
        for &b in banks {
            let targets = self.select_targets(b);
            if !targets.is_empty() {
                self.targeted_refreshes += targets.len() as u64;
                out.push((b, targets));
            }
        }
        out
    }

    fn select_targets(&mut self, flat_bank: usize) -> Vec<u32> {
        let k = self.config.targets_per_ref;
        let min_count = self.config.min_count;
        match &mut self.samplers[flat_bank] {
            Sampler::MisraGries { entries } => {
                // Take the k highest-count rows above the confidence
                // threshold and drop them: the device believes it has
                // dealt with them.
                entries.sort_by_key(|e| std::cmp::Reverse(e.1));
                let take = entries
                    .iter()
                    .take_while(|(_, c)| *c >= min_count)
                    .count()
                    .min(k);
                let targets: Vec<u32> = entries[..take].iter().map(|(r, _)| *r).collect();
                entries.drain(..take);
                targets
            }
            Sampler::Reservoir { slots, seen } => {
                let mut targets = Vec::new();
                for _ in 0..k {
                    if slots.is_empty() {
                        break;
                    }
                    let i = self.rng.below(slots.len() as u64) as usize;
                    targets.push(slots.swap_remove(i));
                }
                if slots.is_empty() {
                    *seen = 0;
                }
                targets
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(table_size: usize, kind: TrrSamplerKind) -> TrrEngine {
        TrrEngine::new(
            TrrConfig {
                table_size,
                kind,
                targets_per_ref: 1,
                radius: 1,
                min_count: 1,
            },
            2,
            DetRng::new(1),
        )
    }

    #[test]
    fn misra_gries_finds_single_heavy_hitter() {
        let mut e = engine(4, TrrSamplerKind::MisraGries);
        for _ in 0..100 {
            e.observe_act(0, 42);
        }
        for r in 0..3 {
            e.observe_act(0, r);
        }
        let targets = e.on_ref(&[0]);
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].0, 0);
        assert_eq!(targets[0].1, vec![42]);
    }

    #[test]
    fn misra_gries_tracks_up_to_n_aggressors() {
        let mut e = engine(4, TrrSamplerKind::MisraGries);
        // 4 aggressors, interleaved evenly: all fit in the table.
        for _ in 0..50 {
            for r in [10, 20, 30, 40] {
                e.observe_act(0, r);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            for (_, ts) in e.on_ref(&[0]) {
                seen.extend(ts);
            }
        }
        assert_eq!(seen, [10u32, 20, 30, 40].into_iter().collect());
    }

    #[test]
    fn misra_gries_thrashes_beyond_n_aggressors() {
        // 16 aggressors against a 4-entry table, round-robin: classic
        // TRRespass. Counts keep being decremented, so the table holds
        // low-confidence residue and most REFs target at most a small
        // subset — the device cannot cover all 16.
        let mut e = engine(4, TrrSamplerKind::MisraGries);
        let aggressors: Vec<u32> = (0..16).map(|i| i * 10).collect();
        let mut covered = std::collections::HashSet::new();
        for _ in 0..20 {
            for &r in &aggressors {
                e.observe_act(0, r);
            }
            for (_, ts) in e.on_ref(&[0]) {
                covered.extend(ts);
            }
        }
        // 20 REFs x 1 target can cover at most 20 rows, but thrashing
        // means far fewer distinct aggressors actually get serviced in
        // time; the key property is the device falls behind the 16x20
        // activations it observed.
        assert!(
            covered.len() < aggressors.len(),
            "table of 4 should not cover all 16 aggressors ({} covered)",
            covered.len()
        );
    }

    #[test]
    fn reservoir_eventually_samples_heavy_hitter() {
        let mut e = engine(2, TrrSamplerKind::Reservoir);
        for _ in 0..200 {
            e.observe_act(1, 7);
        }
        let targets = e.on_ref(&[1]);
        assert!(!targets.is_empty());
        assert!(targets[0].1.iter().all(|&r| r == 7));
    }

    #[test]
    fn banks_have_independent_samplers() {
        let mut e = engine(4, TrrSamplerKind::MisraGries);
        e.observe_act(0, 5);
        let t1 = e.on_ref(&[1]);
        assert!(t1.is_empty(), "bank 1 saw nothing");
        let t0 = e.on_ref(&[0]);
        assert_eq!(t0[0].1, vec![5]);
    }

    #[test]
    fn selected_targets_are_consumed() {
        let mut e = engine(4, TrrSamplerKind::MisraGries);
        for _ in 0..10 {
            e.observe_act(0, 3);
        }
        assert_eq!(e.on_ref(&[0])[0].1, vec![3]);
        assert!(e.on_ref(&[0]).is_empty(), "entry consumed by first REF");
        assert_eq!(e.targeted_refreshes, 1);
    }

    #[test]
    fn confidence_threshold_silences_thrashed_tracker() {
        // The TRRespass mechanism: with a confidence threshold, a
        // few aggressors cross it and get serviced, while many
        // round-robin aggressors keep every count at ~1 and the
        // device never reacts.
        let mk = || {
            TrrEngine::new(
                TrrConfig {
                    table_size: 4,
                    kind: TrrSamplerKind::MisraGries,
                    targets_per_ref: 1,
                    radius: 1,
                    min_count: 4,
                },
                1,
                DetRng::new(9),
            )
        };
        // Two aggressors: counts grow past the threshold.
        let mut few = mk();
        for _ in 0..20 {
            few.observe_act(0, 10);
            few.observe_act(0, 20);
        }
        assert!(
            !few.on_ref(&[0]).is_empty(),
            "few aggressors must be serviced"
        );
        // Twelve aggressors against 4 entries: thrash keeps counts low.
        let mut many = mk();
        for _ in 0..20 {
            for r in 0..12 {
                many.observe_act(0, r * 3);
            }
        }
        for _ in 0..10 {
            assert!(
                many.on_ref(&[0]).is_empty(),
                "thrashed tracker must stay silent (the TRRespass bypass)"
            );
        }
    }

    #[test]
    fn targets_per_ref_bounds_work() {
        let mut e = TrrEngine::new(
            TrrConfig {
                table_size: 8,
                kind: TrrSamplerKind::MisraGries,
                targets_per_ref: 3,
                radius: 2,
                min_count: 1,
            },
            1,
            DetRng::new(2),
        );
        for r in [1u32, 2, 3, 4, 5] {
            for _ in 0..10 {
                e.observe_act(0, r);
            }
        }
        let ts = e.on_ref(&[0]);
        assert_eq!(ts[0].1.len(), 3);
        assert_eq!(e.radius(), 2);
    }
}
