//! The DDR command set as seen on the command bus.
//!
//! The memory controller drives the device model exclusively through
//! [`DdrCommand`]s, mirroring how a real integrated memory controller
//! programs a module (paper §2.1). Two commands go beyond baseline
//! DDR4:
//!
//! - [`DdrCommand::RefNeighbors`] — the paper's proposed optional DRAM
//!   assistance (§4.3): the device refreshes all potential victims
//!   within a caller-supplied blast radius of an aggressor row.
//! - Auto-precharge variants (`RdA`/`WrA`) are folded into the `auto_pre`
//!   flag on [`DdrCommand::Rd`]/[`DdrCommand::Wr`].

use hammertime_common::geometry::BankId;
use hammertime_telemetry::CmdEvent;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A command on one channel's DDR command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DdrCommand {
    /// Activate `row` in `bank`, connecting it to the bank's row buffer.
    Act {
        /// Target bank.
        bank: BankId,
        /// In-bank row index.
        row: u32,
    },
    /// Precharge (close) the open row in `bank`.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Precharge every bank in `rank` of `channel`.
    PreAll {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Read the cache-line burst at `col` of the open row in `bank`.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column burst index.
        col: u32,
        /// Issue an implicit precharge after the burst (RDA).
        auto_pre: bool,
    },
    /// Write the cache-line burst at `col` of the open row in `bank`.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column burst index.
        col: u32,
        /// Issue an implicit precharge after the burst (WRA).
        auto_pre: bool,
    },
    /// All-bank auto-refresh for one rank: recharges the next refresh
    /// group of rows in every bank of the rank.
    Ref {
        /// Target channel.
        channel: u32,
        /// Target rank.
        rank: u32,
    },
    /// Proposed command (paper §4.3): refresh every row within
    /// `radius` rows of `row` (excluding `row` itself) that shares its
    /// subarray, i.e. all potential victims of that aggressor.
    RefNeighbors {
        /// Bank containing the aggressor.
        bank: BankId,
        /// Aggressor row whose neighbors are refreshed.
        row: u32,
        /// Blast radius to cover (rows on each side).
        radius: u32,
    },
}

impl DdrCommand {
    /// Returns the channel this command occupies.
    pub fn channel(&self) -> u32 {
        match self {
            DdrCommand::Act { bank, .. }
            | DdrCommand::Pre { bank }
            | DdrCommand::Rd { bank, .. }
            | DdrCommand::Wr { bank, .. }
            | DdrCommand::RefNeighbors { bank, .. } => bank.channel,
            DdrCommand::PreAll { channel, .. } | DdrCommand::Ref { channel, .. } => *channel,
        }
    }

    /// Returns the rank this command targets.
    pub fn rank(&self) -> u32 {
        match self {
            DdrCommand::Act { bank, .. }
            | DdrCommand::Pre { bank }
            | DdrCommand::Rd { bank, .. }
            | DdrCommand::Wr { bank, .. }
            | DdrCommand::RefNeighbors { bank, .. } => bank.rank,
            DdrCommand::PreAll { rank, .. } | DdrCommand::Ref { rank, .. } => *rank,
        }
    }

    /// Returns the bank this command targets, if it targets a single
    /// bank.
    pub fn bank(&self) -> Option<BankId> {
        match self {
            DdrCommand::Act { bank, .. }
            | DdrCommand::Pre { bank }
            | DdrCommand::Rd { bank, .. }
            | DdrCommand::Wr { bank, .. }
            | DdrCommand::RefNeighbors { bank, .. } => Some(*bank),
            DdrCommand::PreAll { .. } | DdrCommand::Ref { .. } => None,
        }
    }

    /// Short mnemonic, as a trace would print it.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DdrCommand::Act { .. } => "ACT",
            DdrCommand::Pre { .. } => "PRE",
            DdrCommand::PreAll { .. } => "PREA",
            DdrCommand::Rd {
                auto_pre: false, ..
            } => "RD",
            DdrCommand::Rd { auto_pre: true, .. } => "RDA",
            DdrCommand::Wr {
                auto_pre: false, ..
            } => "WR",
            DdrCommand::Wr { auto_pre: true, .. } => "WRA",
            DdrCommand::Ref { .. } => "REF",
            DdrCommand::RefNeighbors { .. } => "REFN",
        }
    }
}

/// [`CmdEvent`] is the telemetry crate's structural mirror of
/// [`DdrCommand`] (telemetry sits *below* this crate in the dependency
/// DAG, so it cannot name the command type directly). The two
/// conversions are field-by-field and total in both directions, which
/// is what lets a recorded trace replay through the device with the
/// exact original commands.
impl From<&DdrCommand> for CmdEvent {
    fn from(cmd: &DdrCommand) -> Self {
        match *cmd {
            DdrCommand::Act { bank, row } => CmdEvent::Act { bank, row },
            DdrCommand::Pre { bank } => CmdEvent::Pre { bank },
            DdrCommand::PreAll { channel, rank } => CmdEvent::PreAll { channel, rank },
            DdrCommand::Rd {
                bank,
                col,
                auto_pre,
            } => CmdEvent::Rd {
                bank,
                col,
                auto_pre,
            },
            DdrCommand::Wr {
                bank,
                col,
                auto_pre,
            } => CmdEvent::Wr {
                bank,
                col,
                auto_pre,
            },
            DdrCommand::Ref { channel, rank } => CmdEvent::Ref { channel, rank },
            DdrCommand::RefNeighbors { bank, row, radius } => {
                CmdEvent::RefNeighbors { bank, row, radius }
            }
        }
    }
}

impl From<&CmdEvent> for DdrCommand {
    fn from(cmd: &CmdEvent) -> Self {
        match *cmd {
            CmdEvent::Act { bank, row } => DdrCommand::Act { bank, row },
            CmdEvent::Pre { bank } => DdrCommand::Pre { bank },
            CmdEvent::PreAll { channel, rank } => DdrCommand::PreAll { channel, rank },
            CmdEvent::Rd {
                bank,
                col,
                auto_pre,
            } => DdrCommand::Rd {
                bank,
                col,
                auto_pre,
            },
            CmdEvent::Wr {
                bank,
                col,
                auto_pre,
            } => DdrCommand::Wr {
                bank,
                col,
                auto_pre,
            },
            CmdEvent::Ref { channel, rank } => DdrCommand::Ref { channel, rank },
            CmdEvent::RefNeighbors { bank, row, radius } => {
                DdrCommand::RefNeighbors { bank, row, radius }
            }
        }
    }
}

impl fmt::Display for DdrCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdrCommand::Act { bank, row } => write!(f, "ACT {bank} r{row}"),
            DdrCommand::Pre { bank } => write!(f, "PRE {bank}"),
            DdrCommand::PreAll { channel, rank } => write!(f, "PREA ch{channel}/rk{rank}"),
            DdrCommand::Rd {
                bank,
                col,
                auto_pre,
            } => {
                write!(f, "{} {bank} c{col}", if *auto_pre { "RDA" } else { "RD" })
            }
            DdrCommand::Wr {
                bank,
                col,
                auto_pre,
            } => {
                write!(f, "{} {bank} c{col}", if *auto_pre { "WRA" } else { "WR" })
            }
            DdrCommand::Ref { channel, rank } => write!(f, "REF ch{channel}/rk{rank}"),
            DdrCommand::RefNeighbors { bank, row, radius } => {
                write!(f, "REFN {bank} r{row} b{radius}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankId {
        BankId {
            channel: 1,
            rank: 0,
            bank_group: 2,
            bank: 3,
        }
    }

    #[test]
    fn channel_rank_extraction() {
        let act = DdrCommand::Act {
            bank: bank(),
            row: 5,
        };
        assert_eq!(act.channel(), 1);
        assert_eq!(act.rank(), 0);
        assert_eq!(act.bank(), Some(bank()));

        let rf = DdrCommand::Ref {
            channel: 0,
            rank: 1,
        };
        assert_eq!(rf.channel(), 0);
        assert_eq!(rf.rank(), 1);
        assert_eq!(rf.bank(), None);
    }

    #[test]
    fn mnemonics_distinguish_auto_precharge() {
        let rd = DdrCommand::Rd {
            bank: bank(),
            col: 0,
            auto_pre: false,
        };
        let rda = DdrCommand::Rd {
            bank: bank(),
            col: 0,
            auto_pre: true,
        };
        assert_eq!(rd.mnemonic(), "RD");
        assert_eq!(rda.mnemonic(), "RDA");
        let wr = DdrCommand::Wr {
            bank: bank(),
            col: 0,
            auto_pre: false,
        };
        let wra = DdrCommand::Wr {
            bank: bank(),
            col: 0,
            auto_pre: true,
        };
        assert_eq!(wr.mnemonic(), "WR");
        assert_eq!(wra.mnemonic(), "WRA");
    }

    #[test]
    fn cmd_event_round_trips_every_variant() {
        let cmds = [
            DdrCommand::Act {
                bank: bank(),
                row: 5,
            },
            DdrCommand::Pre { bank: bank() },
            DdrCommand::PreAll {
                channel: 1,
                rank: 0,
            },
            DdrCommand::Rd {
                bank: bank(),
                col: 9,
                auto_pre: true,
            },
            DdrCommand::Wr {
                bank: bank(),
                col: 2,
                auto_pre: false,
            },
            DdrCommand::Ref {
                channel: 0,
                rank: 1,
            },
            DdrCommand::RefNeighbors {
                bank: bank(),
                row: 9,
                radius: 2,
            },
        ];
        for cmd in &cmds {
            let ev = CmdEvent::from(cmd);
            assert_eq!(DdrCommand::from(&ev), *cmd);
            assert_eq!(ev.mnemonic(), cmd.mnemonic(), "{cmd}");
        }
    }

    #[test]
    fn display_includes_coordinates() {
        let s = DdrCommand::Act {
            bank: bank(),
            row: 7,
        }
        .to_string();
        assert!(s.contains("ACT") && s.contains("r7"), "{s}");
        let s = DdrCommand::RefNeighbors {
            bank: bank(),
            row: 9,
            radius: 2,
        }
        .to_string();
        assert!(
            s.contains("REFN") && s.contains("r9") && s.contains("b2"),
            "{s}"
        );
    }
}
