//! Trace replay: drive a [`DramModule`] straight from a recorded
//! command trace and verify it reproduces the recording.
//!
//! The device is deterministic given its config (which embeds the
//! flip-sampling seed and fault plan) and the exact command sequence —
//! no wall clock, no ambient randomness. A trace therefore carries
//! everything needed to rebuild the run *without* the scheduler that
//! produced it: [`Event::DeviceReset`] holds the config JSON,
//! [`Event::Command`] records each accepted command with its issue
//! cycle, and [`Event::DeviceStats`] closes the device with its final
//! counters. [`replay_records`] replays that stream and checks, record
//! by record, that the fresh device produces the same flips, the same
//! retention-check verdicts, and byte-identical [`DramStats`].
//!
//! Machine- and controller-level events (ACT-interrupts, refresh
//! instructions, remaps, scheduler wedges, metrics) are passed over:
//! they describe layers above the device and carry no device state.

use crate::command::DdrCommand;
use crate::module::{DramConfig, DramModule};
use crate::stats::DramStats;
use hammertime_common::{Cycle, Error, Result};
use hammertime_telemetry::{Event, TraceRecord};
use serde::{Deserialize, Serialize};

/// What a successful replay covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplaySummary {
    /// Devices rebuilt (one per [`Event::DeviceReset`]).
    pub devices: u64,
    /// Commands re-issued.
    pub commands: u64,
    /// Flips reproduced and matched against the recording.
    pub flips: u64,
}

/// One device lifetime inside the trace, from `DeviceReset` to
/// `DeviceStats`.
struct Segment {
    module: DramModule,
    /// Flips the recording claims, in emission order:
    /// `(cycle, flat_bank, victim_row, aggressor_row, bit)`.
    expected_flips: Vec<(u64, u64, u32, u32, u64)>,
}

fn malformed(what: &str, index: usize) -> Error {
    Error::Config(format!("malformed trace at record {index}: {what}"))
}

fn divergence(what: String, index: usize) -> Error {
    Error::Fault(format!("replay divergence at record {index}: {what}"))
}

impl Segment {
    /// Closes the segment against its recorded final stats: counters
    /// byte-identical, flip stream identical event for event.
    fn finish(mut self, stats_json: &str, index: usize) -> Result<u64> {
        let recorded: DramStats = serde_json::from_str(stats_json)
            .map_err(|e| malformed(&format!("bad device stats JSON: {}", e.0), index))?;
        let replayed = self.module.stats();
        if replayed != recorded {
            return Err(divergence(
                format!("device stats differ: replayed {replayed:?}, recorded {recorded:?}"),
                index,
            ));
        }
        let flips = self.module.drain_flips();
        if flips.len() != self.expected_flips.len() {
            return Err(divergence(
                format!(
                    "flip count differs: replayed {}, recorded {}",
                    flips.len(),
                    self.expected_flips.len()
                ),
                index,
            ));
        }
        for (f, exp) in flips.iter().zip(&self.expected_flips) {
            let got = (
                f.time.raw(),
                f.flat_bank as u64,
                f.victim_row,
                f.aggressor_row,
                f.bit,
            );
            if got != *exp {
                return Err(divergence(
                    format!("flip differs: replayed {got:?}, recorded {exp:?}"),
                    index,
                ));
            }
        }
        Ok(flips.len() as u64)
    }
}

/// Replays a recorded trace through fresh [`DramModule`]s and verifies
/// every device-level record against the rebuilt device.
///
/// # Errors
///
/// [`Error::Config`] if the trace is structurally malformed (a command
/// before any `DeviceReset`, unparseable embedded JSON, a device left
/// open at end of trace); [`Error::Fault`] on any divergence between
/// the recording and the replay — a rejected command, a mismatched
/// flip, a retention verdict or final stats that differ.
pub fn replay_records(records: &[TraceRecord]) -> Result<ReplaySummary> {
    let mut current: Option<Segment> = None;
    let mut summary = ReplaySummary {
        devices: 0,
        commands: 0,
        flips: 0,
    };
    for (index, rec) in records.iter().enumerate() {
        match &rec.event {
            Event::DeviceReset { config_json } => {
                if current.is_some() {
                    return Err(malformed("device reset while a device is open", index));
                }
                let config: DramConfig = serde_json::from_str(config_json)
                    .map_err(|e| malformed(&format!("bad device config JSON: {}", e.0), index))?;
                let module = DramModule::new(config)?;
                current = Some(Segment {
                    module,
                    expected_flips: Vec::new(),
                });
                summary.devices += 1;
            }
            Event::Command { cmd } => {
                let seg = current
                    .as_mut()
                    .ok_or_else(|| malformed("command before device reset", index))?;
                let cmd = DdrCommand::from(cmd);
                seg.module
                    .issue(&cmd, Cycle(rec.cycle))
                    .map_err(|e| divergence(format!("{cmd} rejected: {e}"), index))?;
                summary.commands += 1;
            }
            Event::Flip {
                flat_bank,
                victim_row,
                aggressor_row,
                bit,
            } => {
                let seg = current
                    .as_mut()
                    .ok_or_else(|| malformed("flip before device reset", index))?;
                seg.expected_flips
                    .push((rec.cycle, *flat_bank, *victim_row, *aggressor_row, *bit));
            }
            Event::RetentionCheck {
                bank,
                row,
                margin,
                decayed,
            } => {
                let seg = current
                    .as_mut()
                    .ok_or_else(|| malformed("retention check before device reset", index))?;
                let got = seg
                    .module
                    .check_retention(bank, *row, Cycle(rec.cycle), *margin);
                if got != *decayed {
                    return Err(divergence(
                        format!(
                            "retention check on {bank} r{row} differs: \
                             replayed {got}, recorded {decayed}"
                        ),
                        index,
                    ));
                }
            }
            Event::DeviceStats { stats_json } => {
                let seg = current
                    .take()
                    .ok_or_else(|| malformed("device stats before device reset", index))?;
                summary.flips += seg.finish(stats_json, index)?;
            }
            // Controller- and machine-level events: no device state.
            Event::TrrRefresh { .. }
            | Event::ActInterrupt { .. }
            | Event::RefreshInstr { .. }
            | Event::Remap { .. }
            | Event::FaultInjected { .. }
            | Event::SchedulerWedge { .. } => {}
        }
    }
    if current.is_some() {
        return Err(malformed(
            "trace ended with a device still open (no device-stats record)",
            records.len(),
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DdrCommand;
    use hammertime_common::geometry::BankId;
    use hammertime_common::FaultPlan;
    use hammertime_telemetry::Tracer;

    fn bank0() -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        }
    }

    /// Records a hammer run (with a REF and a retention check mixed
    /// in) under a buffer tracer and returns the trace.
    fn record(mut cfg: DramConfig) -> Vec<TraceRecord> {
        let tracer = Tracer::buffer();
        cfg.tracer = Some(tracer.clone());
        let mut m = DramModule::new(cfg).unwrap();
        let mut now = Cycle::ZERO;
        for _ in 0..40 {
            let act = DdrCommand::Act {
                bank: bank0(),
                row: 8,
            };
            now = now.max(m.earliest(&act));
            now = m.issue(&act, now).unwrap().done;
            let pre = DdrCommand::Pre { bank: bank0() };
            now = now.max(m.earliest(&pre));
            now = m.issue(&pre, now).unwrap().done;
        }
        let rf = DdrCommand::Ref {
            channel: 0,
            rank: 0,
        };
        now = now.max(m.earliest(&rf));
        now = m.issue(&rf, now).unwrap().done;
        m.check_retention(&bank0(), 3, now, 1.0);
        assert!(m.stats().flips > 0, "fixture must generate flips");
        drop(m);
        tracer.take_records()
    }

    #[test]
    fn recorded_hammer_replays_exactly() {
        let trace = record(DramConfig::test_config(10));
        let summary = replay_records(&trace).unwrap();
        assert_eq!(summary.devices, 1);
        assert_eq!(summary.commands, 81);
        assert!(summary.flips > 0);
    }

    #[test]
    fn faulted_recording_replays_exactly() {
        let mut cfg = DramConfig::test_config(10);
        cfg.faults = Some(FaultPlan {
            seed: 7,
            dropped_ref: 0.5,
            trr_miss: 0.5,
            ..FaultPlan::default()
        });
        let trace = record(cfg);
        let summary = replay_records(&trace).unwrap();
        assert_eq!(summary.devices, 1);
        assert!(summary.flips > 0);
    }

    #[test]
    fn tampered_flip_is_caught() {
        let mut trace = record(DramConfig::test_config(10));
        let idx = trace
            .iter()
            .position(|r| matches!(r.event, Event::Flip { .. }))
            .expect("trace has flips");
        if let Event::Flip { victim_row, .. } = &mut trace[idx].event {
            *victim_row += 1;
        }
        let err = replay_records(&trace).unwrap_err();
        assert!(matches!(err, Error::Fault(_)), "{err}");
    }

    #[test]
    fn tampered_command_is_caught() {
        let mut trace = record(DramConfig::test_config(10));
        // Retarget the second ACT to a different row: downstream flips
        // no longer match the recording.
        let idx = trace
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                matches!(
                    r.event,
                    Event::Command {
                        cmd: hammertime_telemetry::CmdEvent::Act { .. }
                    }
                )
            })
            .map(|(i, _)| i)
            .nth(1)
            .expect("trace has ACTs");
        if let Event::Command {
            cmd: hammertime_telemetry::CmdEvent::Act { row, .. },
        } = &mut trace[idx].event
        {
            *row = 2;
        }
        let err = replay_records(&trace).unwrap_err();
        assert!(matches!(err, Error::Fault(_)), "{err}");
    }

    #[test]
    fn truncated_trace_is_malformed() {
        let mut trace = record(DramConfig::test_config(10));
        trace.pop(); // drop the closing DeviceStats
        let err = replay_records(&trace).unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err}");
    }

    #[test]
    fn empty_trace_replays_vacuously() {
        let summary = replay_records(&[]).unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                devices: 0,
                commands: 0,
                flips: 0
            }
        );
    }
}
