//! Per-bank state machines with DDR timing enforcement.
//!
//! A bank is a grid of rows with one shared row buffer (paper Fig. 1).
//! The FSM enforces protocol legality — commands in an illegal state or
//! before their earliest legal cycle return [`Error::Protocol`] /
//! [`Error::Timing`] rather than silently corrupting the model.
//!
//! Bank-local constraints enforced here: tRCD (ACT→RD/WR), tRAS
//! (ACT→PRE), tRP (PRE→ACT), tRC (ACT→ACT same bank), tRTP (RD→PRE),
//! write recovery (WR data→PRE). Rank-level constraints (tRRD, tFAW,
//! tRFC) live in [`crate::module`].
//!
//! The FSM/timing state of *all* banks lives in one [`TimingSoA`]
//! (struct-of-arrays) owned by the module: scheduler probes
//! (`earliest_*`) and the event wheel's candidate revalidation touch
//! one contiguous column per field instead of striding over whole
//! per-bank structs. [`Bank`] remains the per-bank view type for what
//! is genuinely per-bank and cold: row disturbance bookkeeping
//! ([`VictimState`]), activation counters, and the batched-pressure
//! log. The module pairs column `b` of the SoA with `banks[b]`.

use crate::disturb::{DisturbanceProfile, PressureTable, VictimState};
use crate::timing::TimingParams;
use hammertime_common::{Cycle, Error, Result};
use serde::{Deserialize, Serialize};

/// Sentinel in [`TimingSoA`]'s open-row column: bank idle, no row open.
pub const NO_OPEN_ROW: u32 = u32::MAX;

// Error construction stays out of line so the checked SoA operations
// inline down to a few compares and stores on their success path.
#[cold]
#[inline(never)]
fn act_while_open(row: u32, open: u32) -> Error {
    Error::Protocol(format!("ACT r{row} while r{open} is open (PRE first)"))
}

#[cold]
#[inline(never)]
fn timing_err(what: &str, now: Cycle, earliest: Cycle) -> Error {
    Error::Timing(format!("{what} at {now} before earliest {earliest}"))
}

/// The row-buffer state of a bank (view over [`TimingSoA`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// All rows precharged; the row buffer is empty.
    Idle,
    /// `row` is connected to the row buffer.
    Active {
        /// The open row.
        row: u32,
        /// When the ACT was issued (for tRAS/tRC accounting).
        opened_at: Cycle,
    },
}

/// Struct-of-arrays FSM and timing state for every bank of a device.
///
/// Column `b` holds bank `b`'s row-buffer state and per-class
/// readiness. The open-row column uses [`NO_OPEN_ROW`] as the idle
/// sentinel so the hot "is a row open?" probe is one `u32` compare.
///
/// Methods mirror the per-bank FSM exactly: each checked operation
/// validates protocol state and timing before mutating, so driving a
/// column directly (as the property tests do) behaves identically to
/// driving it through [`crate::module::DramModule`] — the module's
/// per-command earliest gate merely makes the internal checks
/// unreachable.
#[derive(Debug, Clone)]
pub struct TimingSoA {
    /// Open internal row per bank; [`NO_OPEN_ROW`] when idle.
    /// Crate-visible so the module's register-resident burst loop
    /// ([`crate::module::DramModule::issue_hammer_pairs`]) can check
    /// out a column and write it back without per-command indexing.
    pub(crate) open_row: Vec<u32>,
    /// When the open row's ACT issued (tRAS/tRC accounting).
    pub(crate) opened_at: Vec<Cycle>,
    /// Earliest cycle an ACT may issue (tRP/tRC effects).
    pub(crate) ready_act: Vec<Cycle>,
    /// Earliest cycle a PRE may issue (tRAS/tRTP/tWR effects).
    pub(crate) ready_pre: Vec<Cycle>,
    /// Earliest cycle a RD/WR may issue (tRCD effect); meaningful only
    /// while a row is open.
    pub(crate) ready_rdwr: Vec<Cycle>,
}

impl TimingSoA {
    /// All-idle timing state for `banks` banks.
    pub fn new(banks: usize) -> TimingSoA {
        TimingSoA {
            open_row: vec![NO_OPEN_ROW; banks],
            opened_at: vec![Cycle::ZERO; banks],
            ready_act: vec![Cycle::ZERO; banks],
            ready_pre: vec![Cycle::ZERO; banks],
            ready_rdwr: vec![Cycle::ZERO; banks],
        }
    }

    /// Number of banks tracked.
    pub fn banks(&self) -> usize {
        self.open_row.len()
    }

    /// Whether bank `b` has a row open.
    #[inline]
    pub fn is_active(&self, b: usize) -> bool {
        self.open_row[b] != NO_OPEN_ROW
    }

    /// The open (internal) row of bank `b`, if any.
    #[inline]
    pub fn open_row(&self, b: usize) -> Option<u32> {
        match self.open_row[b] {
            NO_OPEN_ROW => None,
            row => Some(row),
        }
    }

    /// Bank `b`'s FSM state as the classic enum view.
    pub fn state(&self, b: usize) -> BankState {
        match self.open_row[b] {
            NO_OPEN_ROW => BankState::Idle,
            row => BankState::Active {
                row,
                opened_at: self.opened_at[b],
            },
        }
    }

    /// Earliest cycle an ACT may legally issue on bank `b`.
    #[inline]
    pub fn earliest_act(&self, b: usize) -> Cycle {
        if self.open_row[b] == NO_OPEN_ROW {
            self.ready_act[b]
        } else {
            // Must PRE first; an ACT is never legal while active.
            Cycle::MAX
        }
    }

    /// Earliest cycle a RD/WR may legally issue on bank `b` (only
    /// while active).
    #[inline]
    pub fn earliest_rdwr(&self, b: usize) -> Cycle {
        if self.open_row[b] == NO_OPEN_ROW {
            Cycle::MAX
        } else {
            self.ready_rdwr[b]
        }
    }

    /// Earliest cycle a PRE may legally issue on bank `b`. PRE of an
    /// idle bank is a legal no-op, available immediately.
    #[inline]
    pub fn earliest_pre(&self, b: usize) -> Cycle {
        if self.open_row[b] == NO_OPEN_ROW {
            Cycle::ZERO
        } else {
            self.ready_pre[b]
        }
    }

    /// Activates `row` on bank `b` at `now`.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] if the bank is active; [`Error::Timing`] if
    /// `now` is before the earliest legal ACT.
    #[inline]
    pub fn act(&mut self, b: usize, row: u32, now: Cycle, timing: &TimingParams) -> Result<()> {
        let open = self.open_row[b];
        if open != NO_OPEN_ROW {
            return Err(act_while_open(row, open));
        }
        if now < self.ready_act[b] {
            return Err(timing_err("ACT", now, self.ready_act[b]));
        }
        self.open_row[b] = row;
        self.opened_at[b] = now;
        self.ready_rdwr[b] = now + timing.t_rcd;
        self.ready_pre[b] = now + timing.t_ras;
        Ok(())
    }

    /// Precharges bank `b` at `now`. PRE of an idle bank is a legal
    /// no-op (the paper's refresh-instruction sequence begins with an
    /// unconditional PRE, §4.3).
    ///
    /// Returns whether a row was actually closed (so the caller can
    /// count real closes and skip the no-op case).
    ///
    /// # Errors
    ///
    /// [`Error::Timing`] if the bank is active and `now` is before the
    /// earliest legal PRE.
    #[inline]
    pub fn pre(&mut self, b: usize, now: Cycle, timing: &TimingParams) -> Result<bool> {
        if self.open_row[b] == NO_OPEN_ROW {
            return Ok(false); // No-op; does not reset ready_act.
        }
        if now < self.ready_pre[b] {
            return Err(timing_err("PRE", now, self.ready_pre[b]));
        }
        self.close(b, now, timing);
        Ok(true)
    }

    #[inline]
    fn close(&mut self, b: usize, pre_time: Cycle, timing: &TimingParams) {
        self.open_row[b] = NO_OPEN_ROW;
        self.ready_act[b] = (pre_time + timing.t_rp).max(self.opened_at[b] + timing.t_rc);
    }

    /// Reads from the open row of bank `b` at `now`.
    ///
    /// Returns the open row and the cycle at which data completes on
    /// the bus (`now + CL + tBL`). With `auto_pre` the bank precharges
    /// itself at the earliest legal point after the read.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] if no row is open; [`Error::Timing`] before
    /// tRCD has elapsed.
    #[inline]
    pub fn rd(
        &mut self,
        b: usize,
        now: Cycle,
        auto_pre: bool,
        timing: &TimingParams,
    ) -> Result<(u32, Cycle)> {
        let row = self.open_row[b];
        if row == NO_OPEN_ROW {
            return Err(Error::Protocol("RD with no open row".into()));
        }
        if now < self.ready_rdwr[b] {
            return Err(timing_err("RD", now, self.ready_rdwr[b]));
        }
        let data_done = now + timing.cl + timing.t_bl;
        self.ready_pre[b] = self.ready_pre[b].max(now + timing.t_rtp);
        if auto_pre {
            let pre_time = self.ready_pre[b];
            self.close(b, pre_time, timing);
        }
        Ok((row, data_done))
    }

    /// Writes to the open row of bank `b` at `now`.
    ///
    /// Returns the open row and the cycle at which the write burst (and
    /// recovery) completes. With `auto_pre` the bank precharges itself
    /// at the earliest legal point after write recovery.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] if no row is open; [`Error::Timing`] before
    /// tRCD has elapsed.
    #[inline]
    pub fn wr(
        &mut self,
        b: usize,
        now: Cycle,
        auto_pre: bool,
        timing: &TimingParams,
    ) -> Result<(u32, Cycle)> {
        let row = self.open_row[b];
        if row == NO_OPEN_ROW {
            return Err(Error::Protocol("WR with no open row".into()));
        }
        if now < self.ready_rdwr[b] {
            return Err(timing_err("WR", now, self.ready_rdwr[b]));
        }
        let data_end = now + timing.cwl + timing.t_bl;
        self.ready_pre[b] = self.ready_pre[b].max(data_end + timing.t_wr);
        if auto_pre {
            let pre_time = self.ready_pre[b];
            self.close(b, pre_time, timing);
        }
        Ok((row, data_end))
    }

    /// Blocks bank `b` until `until` (used while a rank-level REF or a
    /// multi-row REF_NEIGHBORS occupies it).
    #[inline]
    pub fn block_until(&mut self, b: usize, until: Cycle) {
        self.ready_act[b] = self.ready_act[b].max(until);
    }
}

/// Per-row bookkeeping within a bank.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RowState {
    /// Disturbance accumulation for this row as a *victim*.
    pub victim: VictimState,
    /// ACTs of this row since its own last refresh (its life as an
    /// *aggressor*); the ground truth frequency-centric defenses try
    /// to bound.
    pub acts_since_refresh: u32,
    /// Lifetime ACT count (wear statistics).
    pub total_acts: u64,
}

/// A disturbance notification produced by an ACT: the victim row and
/// how many new flip opportunities the pressure crossing created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disturbance {
    /// Victim row (in-bank index).
    pub victim_row: u32,
    /// Fresh flip opportunities (see [`VictimState::add_pressure`]).
    pub opportunities: u32,
}

/// One bank's rows-and-disturbance view. Timing/FSM state lives in the
/// module-owned [`TimingSoA`]; this type carries what is per-row or
/// cold: victim pressure, activation counters, the batched-pressure
/// log, and the counter-saturation fault.
#[derive(Debug, Clone)]
pub struct Bank {
    rows: Vec<RowState>,
    rows_per_subarray: u32,
    profile: DisturbanceProfile,
    /// Precomputed `w(d)` weights (bit-exact with
    /// [`DisturbanceProfile::pressure_at`]).
    weights: PressureTable,
    /// Opt-in deferred disturbance accounting (see
    /// `DramConfig::batched_pressure`): ACTs append to `pending` in
    /// O(1) and victims are settled at the next flush boundary.
    batched: bool,
    /// Run-length log of ACTs whose disturbance is not yet applied
    /// (batched mode): `(aggressor row, consecutive ACT count)` in
    /// issue order, so a flush replays aggressor interleavings exactly.
    pending: Vec<(u32, u64)>,
    /// Disturbances produced by a flush, awaiting flip sampling by the
    /// module: `(aggressor row, disturbance)`.
    flushed: Vec<(u32, Disturbance)>,
    /// Fault injection: ceiling at which `acts_since_refresh` saturates
    /// (0 = count accurately). Models a wedged per-row activation
    /// counter that undercounts sustained hammering.
    act_saturation: u32,
    /// How many ACT-count increments the saturation ceiling swallowed.
    pub saturation_clamps: u64,
    /// ACT count of this bank (row-buffer statistics).
    pub acts: u64,
    /// Real row closes (PRE and auto-precharge; idle-PRE no-ops are
    /// not counted). Maintained by the module alongside
    /// [`TimingSoA`] closes.
    pub pres: u64,
}

impl Bank {
    /// Creates a bank view with `rows` rows organized in subarrays of
    /// `rows_per_subarray`, disturbed according to `profile`. With
    /// `batched` the per-ACT victim walk is deferred to flush
    /// boundaries (refresh or an explicit flush) — an opt-in
    /// approximation that makes an N-ACT burst cost O(unique aggressor
    /// runs) instead of O(N x blast diameter).
    pub fn new(
        rows: u32,
        rows_per_subarray: u32,
        profile: DisturbanceProfile,
        batched: bool,
    ) -> Bank {
        assert!(rows > 0 && rows_per_subarray > 0 && rows.is_multiple_of(rows_per_subarray));
        Bank {
            rows: vec![RowState::default(); rows as usize],
            rows_per_subarray,
            weights: PressureTable::new(&profile),
            profile,
            batched,
            pending: Vec::new(),
            flushed: Vec::new(),
            act_saturation: 0,
            saturation_clamps: 0,
            acts: 0,
            pres: 0,
        }
    }

    /// Enables the disturbance-counter saturation fault: per-row
    /// `acts_since_refresh` counters cap at `ceiling` instead of
    /// counting accurately (`0` restores accurate counting). Swallowed
    /// increments are tallied in [`Bank::saturation_clamps`].
    pub fn set_act_saturation(&mut self, ceiling: u32) {
        self.act_saturation = ceiling;
    }

    /// Number of rows in the bank.
    pub fn rows(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Immutable view of a row's state.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_state(&self, row: u32) -> &RowState {
        &self.rows[row as usize]
    }

    fn subarray_bounds(&self, row: u32) -> (u32, u32) {
        let sa = row / self.rows_per_subarray;
        let lo = sa * self.rows_per_subarray;
        (lo, lo + self.rows_per_subarray - 1)
    }

    /// Applies the disturbance side of an ACT of `row` at `now` (the
    /// FSM/timing side lives in [`TimingSoA::act`]), disturbing the
    /// row's in-subarray neighbors.
    ///
    /// Returns the set of victims whose pressure crossed flip
    /// thresholds; the caller samples actual bit flips from these
    /// opportunities. The ACT also refreshes `row` itself (paper §2.1:
    /// "an ACT of a row also repairs the row as a side effect").
    ///
    /// In batched mode the ACT is appended to the pending log instead
    /// and the returned set is empty; victims settle at the next flush
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range (the module validates range
    /// before the FSM transition).
    pub fn record_act(&mut self, row: u32, now: Cycle) -> Vec<Disturbance> {
        self.acts += 1;

        if self.batched {
            // Defer the victim walk: extend the current run or open a
            // new one. Per-row bookkeeping happens at flush, in order.
            match self.pending.last_mut() {
                Some((last, count)) if *last == row => *count += 1,
                _ => self.pending.push((row, 1)),
            }
            return Vec::new();
        }

        // The aggressor row itself is repaired by its own activation.
        let sat = self.act_saturation;
        let rs = &mut self.rows[row as usize];
        rs.victim.refresh(now);
        if sat > 0 && rs.acts_since_refresh >= sat {
            self.saturation_clamps += 1;
        } else {
            rs.acts_since_refresh += 1;
        }
        rs.total_acts += 1;

        // Disturb in-subarray neighbors out to the blast radius.
        // Subarrays are electromagnetically isolated (paper §4.1), so
        // pressure never crosses a subarray boundary — the physical
        // fact the isolation-centric primitive builds on.
        let profile = self.profile;
        let (lo, hi) = self.subarray_bounds(row);
        let mut out = Vec::new();
        for d in 1..=profile.blast_radius {
            let w = self.weights.at(d);
            for victim in [row.checked_sub(d), row.checked_add(d)]
                .into_iter()
                .flatten()
            {
                if victim < lo || victim > hi {
                    continue;
                }
                let fresh = self.rows[victim as usize].victim.add_pressure(w, &profile);
                if fresh > 0 {
                    out.push(Disturbance {
                        victim_row: victim,
                        opportunities: fresh,
                    });
                }
            }
        }
        out
    }

    /// Settles the pending ACT log (batched mode): replays each
    /// aggressor run in issue order, applying `count x w(d)` pressure
    /// per victim, and queues the resulting disturbances for
    /// [`Bank::take_flushed`]. A run's aggregated pressure equals the
    /// per-ACT sum exactly for dyadic decays (0.5, 1.0) and to within
    /// FP rounding otherwise; flip opportunities and row refreshes are
    /// stamped with the flush time rather than each ACT's own cycle.
    ///
    /// No-op when the log is empty (always, in non-batched mode).
    pub fn flush_disturbances(&mut self, now: Cycle) {
        if self.pending.is_empty() {
            return;
        }
        let profile = self.profile;
        let pending = std::mem::take(&mut self.pending);
        let sat = self.act_saturation;
        for (row, count) in pending {
            let rs = &mut self.rows[row as usize];
            rs.victim.refresh(now);
            rs.acts_since_refresh = rs.acts_since_refresh.saturating_add(count as u32);
            if sat > 0 && rs.acts_since_refresh > sat {
                self.saturation_clamps += u64::from(rs.acts_since_refresh - sat);
                rs.acts_since_refresh = sat;
            }
            rs.total_acts += count;
            let (lo, hi) = self.subarray_bounds(row);
            for d in 1..=profile.blast_radius {
                let w = self.weights.at(d) * count as f64;
                for victim in [row.checked_sub(d), row.checked_add(d)]
                    .into_iter()
                    .flatten()
                {
                    if victim < lo || victim > hi {
                        continue;
                    }
                    let fresh = self.rows[victim as usize].victim.add_pressure(w, &profile);
                    if fresh > 0 {
                        self.flushed.push((
                            row,
                            Disturbance {
                                victim_row: victim,
                                opportunities: fresh,
                            },
                        ));
                    }
                }
            }
        }
    }

    /// Takes the disturbances produced by flushes since the last call,
    /// as `(aggressor row, disturbance)` pairs awaiting flip sampling.
    pub fn take_flushed(&mut self) -> Vec<(u32, Disturbance)> {
        std::mem::take(&mut self.flushed)
    }

    /// Whether the batched-pressure log has unsettled ACTs.
    pub fn has_pending_disturbance(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Refreshes `row` in place (REF slot coverage, REF_NEIGHBORS, or
    /// the refresh instruction's ACT): clears its disturbance pressure
    /// and aggressor counter.
    ///
    /// This is a state update, not a timed command — the *caller*
    /// accounts for the bank-busy time of whichever command performed
    /// the refresh.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn refresh_row(&mut self, row: u32, now: Cycle) {
        // Pending ACTs happened before this refresh: settle them first
        // so their pressure lands (and can flip) before the reset.
        self.flush_disturbances(now);
        let rs = &mut self.rows[row as usize];
        rs.victim.refresh(now);
        rs.acts_since_refresh = 0;
    }

    /// Returns the in-subarray neighbors of `row` within `radius`
    /// (potential victims of `row` as an aggressor).
    pub fn neighbors_within(&self, row: u32, radius: u32) -> Vec<u32> {
        let (lo, hi) = self.subarray_bounds(row);
        let mut out = Vec::new();
        for d in 1..=radius {
            if let Some(v) = row.checked_sub(d) {
                if v >= lo {
                    out.push(v);
                }
            }
            if let Some(v) = row.checked_add(d) {
                if v <= hi {
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp() -> TimingParams {
        TimingParams::tiny_test()
    }

    fn profile(mac: u64) -> DisturbanceProfile {
        DisturbanceProfile {
            mac,
            blast_radius: 2,
            distance_decay: 0.5,
            flip_prob: 1.0,
            overshoot_step: 0.05,
        }
    }

    /// One bank driven the way the module drives it: FSM transitions
    /// through a one-column [`TimingSoA`], disturbance through the
    /// [`Bank`] view.
    struct Harness {
        soa: TimingSoA,
        bank: Bank,
    }

    fn bank_with(profile: DisturbanceProfile) -> Harness {
        Harness {
            soa: TimingSoA::new(1),
            bank: Bank::new(32, 16, profile, false),
        }
    }

    impl Harness {
        fn act(&mut self, row: u32, now: Cycle, t: &TimingParams) -> Result<Vec<Disturbance>> {
            self.soa.act(0, row, now, t)?;
            Ok(self.bank.record_act(row, now))
        }

        fn pre(&mut self, now: Cycle, t: &TimingParams) -> Result<()> {
            if self.soa.pre(0, now, t)? {
                self.bank.pres += 1;
            }
            Ok(())
        }

        fn rd(&mut self, now: Cycle, auto_pre: bool, t: &TimingParams) -> Result<(u32, Cycle)> {
            let out = self.soa.rd(0, now, auto_pre, t)?;
            if auto_pre {
                self.bank.pres += 1;
            }
            Ok(out)
        }

        fn wr(&mut self, now: Cycle, auto_pre: bool, t: &TimingParams) -> Result<(u32, Cycle)> {
            let out = self.soa.wr(0, now, auto_pre, t)?;
            if auto_pre {
                self.bank.pres += 1;
            }
            Ok(out)
        }

        fn earliest_act(&self) -> Cycle {
            self.soa.earliest_act(0)
        }
    }

    #[test]
    fn act_then_rd_respects_trcd() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(3, Cycle(0), &t).unwrap();
        assert_eq!(b.soa.open_row(0), Some(3));
        // Too early: tRCD = 4.
        assert!(matches!(b.rd(Cycle(3), false, &t), Err(Error::Timing(_))));
        let (row, done) = b.rd(Cycle(4), false, &t).unwrap();
        assert_eq!(row, 3);
        assert_eq!(done, Cycle(4 + t.cl + t.t_bl));
    }

    #[test]
    fn act_while_active_is_protocol_error() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(1, Cycle(0), &t).unwrap();
        assert!(matches!(b.act(2, Cycle(100), &t), Err(Error::Protocol(_))));
        assert_eq!(b.earliest_act(), Cycle::MAX);
    }

    #[test]
    fn rd_wr_without_open_row_is_protocol_error() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        assert!(matches!(b.rd(Cycle(0), false, &t), Err(Error::Protocol(_))));
        assert!(matches!(b.wr(Cycle(0), false, &t), Err(Error::Protocol(_))));
    }

    #[test]
    fn pre_respects_tras_and_enables_act_after_trp() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(1, Cycle(0), &t).unwrap();
        // tRAS = 10: PRE at 9 illegal.
        assert!(matches!(b.pre(Cycle(9), &t), Err(Error::Timing(_))));
        b.pre(Cycle(10), &t).unwrap();
        // Next ACT: max(pre + tRP, act + tRC) = max(14, 14) = 14.
        assert_eq!(b.earliest_act(), Cycle(14));
        assert!(matches!(b.act(2, Cycle(13), &t), Err(Error::Timing(_))));
        b.act(2, Cycle(14), &t).unwrap();
    }

    #[test]
    fn pre_idle_bank_is_noop() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        assert_eq!(b.soa.earliest_pre(0), Cycle::ZERO);
        b.pre(Cycle(0), &t).unwrap();
        assert_eq!(b.soa.state(0), BankState::Idle);
        assert_eq!(b.bank.pres, 0, "idle PRE should not count as a row close");
    }

    #[test]
    fn read_pushes_out_pre_via_trtp() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(1, Cycle(0), &t).unwrap();
        // Read late so now + tRTP exceeds tRAS.
        b.rd(Cycle(9), false, &t).unwrap();
        // ready_pre = max(0+tRAS, 9+tRTP) = max(10, 12) = 12.
        assert!(matches!(b.pre(Cycle(11), &t), Err(Error::Timing(_))));
        b.pre(Cycle(12), &t).unwrap();
    }

    #[test]
    fn write_recovery_delays_pre() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(1, Cycle(0), &t).unwrap();
        let (_, data_end) = b.wr(Cycle(4), false, &t).unwrap();
        assert_eq!(data_end, Cycle(4 + t.cwl + t.t_bl));
        let earliest = data_end + t.t_wr;
        assert!(matches!(
            b.pre(Cycle(earliest.raw() - 1), &t),
            Err(Error::Timing(_))
        ));
        b.pre(earliest, &t).unwrap();
    }

    #[test]
    fn auto_precharge_closes_bank() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(1, Cycle(0), &t).unwrap();
        b.rd(Cycle(4), true, &t).unwrap();
        assert_eq!(b.soa.state(0), BankState::Idle);
        // Auto-pre time = max(ready_pre) = max(tRAS=10, 4+tRTP=7) = 10;
        // next ACT = max(10 + tRP, 0 + tRC) = 14.
        assert_eq!(b.earliest_act(), Cycle(14));
    }

    #[test]
    fn act_disturbs_neighbors_within_subarray_only() {
        let t = tp(); // MAC 2: flips fast
        let mut b = bank_with(profile(2));
        // Row 15 is the last row of subarray 0 (rows 0..16); its +1 and
        // +2 neighbors (16, 17) are in subarray 1 and must be immune.
        let mut now = Cycle(0);
        let mut victims = std::collections::HashSet::new();
        for _ in 0..20 {
            for d in b.act(15, now, &t).unwrap() {
                victims.insert(d.victim_row);
            }
            now += t.t_ras;
            b.pre(now, &t).unwrap();
            now = b.earliest_act();
        }
        assert!(victims.contains(&13));
        assert!(victims.contains(&14));
        assert!(!victims.contains(&16), "cross-subarray disturbance");
        assert!(!victims.contains(&17), "cross-subarray disturbance");
    }

    #[test]
    fn own_act_refreshes_row() {
        let t = tp();
        let mut b = bank_with(profile(3));
        let mut now = Cycle(0);
        // Hammer row 5; row 6 accumulates pressure. Then activate row 6
        // itself: its pressure must clear.
        for _ in 0..3 {
            b.act(5, now, &t).unwrap();
            now += t.t_ras;
            b.pre(now, &t).unwrap();
            now = b.earliest_act();
        }
        assert!(b.bank.row_state(6).victim.pressure > 0.0);
        b.act(6, now, &t).unwrap();
        assert_eq!(b.bank.row_state(6).victim.pressure, 0.0);
        assert_eq!(b.bank.row_state(6).acts_since_refresh, 1);
    }

    #[test]
    fn refresh_row_clears_counters() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.act(5, Cycle(0), &t).unwrap();
        b.pre(Cycle(10), &t).unwrap();
        assert_eq!(b.bank.row_state(5).acts_since_refresh, 1);
        assert_eq!(b.bank.row_state(5).total_acts, 1);
        b.bank.refresh_row(5, Cycle(20));
        assert_eq!(b.bank.row_state(5).acts_since_refresh, 0);
        assert_eq!(b.bank.row_state(5).total_acts, 1, "lifetime count survives");
        assert_eq!(b.bank.row_state(5).victim.last_refresh, Cycle(20));
    }

    #[test]
    fn neighbors_within_respects_subarray_and_edges() {
        let b = bank_with(profile(1000)).bank;
        assert_eq!(b.neighbors_within(0, 2), vec![1, 2]);
        let n15 = b.neighbors_within(15, 2);
        assert!(n15.contains(&14) && n15.contains(&13));
        assert!(!n15.contains(&16) && !n15.contains(&17));
        let n16 = b.neighbors_within(16, 2);
        assert!(n16.contains(&17) && n16.contains(&18));
        assert!(!n16.contains(&15));
    }

    #[test]
    fn block_until_delays_act() {
        let t = tp();
        let mut b = bank_with(profile(1000));
        b.soa.block_until(0, Cycle(50));
        assert!(matches!(b.act(0, Cycle(49), &t), Err(Error::Timing(_))));
        b.act(0, Cycle(50), &t).unwrap();
    }

    #[test]
    fn sustained_hammer_crosses_mac() {
        let t = tp();
        let mut b = bank_with(profile(10));
        let mut now = Cycle(0);
        let mut opportunities = 0;
        for _ in 0..30 {
            for d in b.act(8, now, &t).unwrap() {
                opportunities += d.opportunities;
            }
            now += t.t_ras;
            b.pre(now, &t).unwrap();
            now = b.earliest_act();
        }
        assert!(
            opportunities > 0,
            "30 ACTs at MAC 10 must create flip opportunities"
        );
    }
}
