//! Sparse row-data storage with bit-flip application.
//!
//! Simulated capacities reach gigabytes, but only rows a workload
//! actually wrote need backing bytes, so storage is a sparse map from
//! `(flat_bank, internal_row)` to a boxed row buffer. Disturbance flips
//! XOR a bit in the stored row when present; flips against unwritten
//! rows are still tracked in a *poisoned-bits* set so later readers and
//! integrity checks observe the corruption (the enclave path, §4.4,
//! detects exactly this).

use hammertime_common::addr::CACHE_LINE_BYTES;
use std::collections::{BTreeSet, HashMap};

/// Key addressing one row's backing store.
pub type RowKey = (usize, u32);

/// Data bits per ECC codeword (SEC-DED over 64-bit words, as on
/// server DIMMs).
pub const ECC_WORD_BITS: u64 = 64;

/// What ECC observed while reading one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EccOutcome {
    /// No flipped bits in the line.
    Clean,
    /// Every flipped word had a single flipped bit: all corrected
    /// (count of corrected bits).
    Corrected(u32),
    /// At least one word held two or more flips: detected but
    /// uncorrectable (count of such words). Cojocar et al. (S&P'19,
    /// cited in the paper's §1) show attackers can even aim for
    /// miscorrection; we model the detectable-failure case.
    Uncorrectable(u32),
}

/// Sparse backing store for row contents.
///
/// Poison is indexed per row so the hot read/write paths touch only
/// the queried row's flipped bits, never the device-wide set: a
/// defense that remaps thousands of pages while thousands of bits are
/// poisoned pays O(bits in this row), not O(bits in the device), per
/// line. Rows with no poisoned bits carry no entry, so the common
/// clean read is one hash probe.
#[derive(Debug, Clone, Default)]
pub struct RowDataStore {
    row_bytes: usize,
    rows: HashMap<RowKey, Box<[u8]>>,
    /// Bits flipped per row (written or not). Invariant: no empty
    /// sets — a row key is present iff at least one bit is poisoned.
    poisoned: HashMap<RowKey, BTreeSet<u64>>,
    /// Total poisoned bits across all rows (kept in step with
    /// `poisoned` so the metrics read is O(1)).
    poisoned_total: usize,
}

impl RowDataStore {
    /// Creates a store for rows of `row_bytes` bytes.
    pub fn new(row_bytes: usize) -> RowDataStore {
        assert!(row_bytes > 0 && row_bytes.is_multiple_of(CACHE_LINE_BYTES as usize));
        RowDataStore {
            row_bytes,
            rows: HashMap::new(),
            poisoned: HashMap::new(),
            poisoned_total: 0,
        }
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Writes one cache line (`col`-th 64-byte burst) of a row,
    /// materializing the row (zero-filled) if needed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one cache line or `col` is out
    /// of range.
    pub fn write_line(&mut self, key: RowKey, col: u32, data: &[u8]) {
        assert_eq!(data.len(), CACHE_LINE_BYTES as usize);
        let off = col as usize * CACHE_LINE_BYTES as usize;
        assert!(off + data.len() <= self.row_bytes, "column out of range");
        let row = self
            .rows
            .entry(key)
            .or_insert_with(|| vec![0u8; self.row_bytes].into_boxed_slice());
        row[off..off + data.len()].copy_from_slice(data);
        // A write re-establishes the intended value of these bits.
        let lo = off as u64 * 8;
        let hi = lo + CACHE_LINE_BYTES * 8;
        if let Some(bits) = self.poisoned.get_mut(&key) {
            let healed: Vec<u64> = bits.range(lo..hi).copied().collect();
            for bit in healed {
                bits.remove(&bit);
                self.poisoned_total -= 1;
            }
            if bits.is_empty() {
                self.poisoned.remove(&key);
            }
        }
    }

    /// Reads one cache line of a row. Returns zeros for never-written
    /// rows (DRAM powers up to an arbitrary-but-stable pattern; zero is
    /// the conventional model).
    pub fn read_line(&self, key: RowKey, col: u32) -> Vec<u8> {
        let off = col as usize * CACHE_LINE_BYTES as usize;
        assert!(off + CACHE_LINE_BYTES as usize <= self.row_bytes);
        match self.rows.get(&key) {
            Some(row) => row[off..off + CACHE_LINE_BYTES as usize].to_vec(),
            None => vec![0u8; CACHE_LINE_BYTES as usize],
        }
    }

    /// Applies a disturbance flip of `bit` in the row, XORing backing
    /// data if present and recording the poison either way.
    ///
    /// # Panics
    ///
    /// Panics if `bit` exceeds the row size.
    pub fn flip_bit(&mut self, key: RowKey, bit: u64) {
        assert!((bit as usize) < self.row_bytes * 8, "bit out of range");
        if let Some(row) = self.rows.get_mut(&key) {
            row[bit as usize / 8] ^= 1 << (bit % 8);
        }
        // Poison set is a toggle: flipping the same bit twice restores it.
        let bits = self.poisoned.entry(key).or_default();
        if bits.remove(&bit) {
            self.poisoned_total -= 1;
            if bits.is_empty() {
                self.poisoned.remove(&key);
            }
        } else {
            bits.insert(bit);
            self.poisoned_total += 1;
        }
    }

    /// Reads one cache line through a SEC-DED ECC model: single-bit
    /// flips per 64-bit word are corrected in the returned data;
    /// multi-bit words are returned as-is and reported uncorrectable.
    pub fn read_line_ecc(&self, key: RowKey, col: u32) -> (Vec<u8>, EccOutcome) {
        let mut data = self.read_line(key, col);
        let lo = col as u64 * CACHE_LINE_BYTES * 8;
        let hi = lo + CACHE_LINE_BYTES * 8;
        // Group this line's poisoned bits by ECC word.
        let mut words: HashMap<u64, Vec<u64>> = HashMap::new();
        if let Some(bits) = self.poisoned.get(&key) {
            for &bit in bits.range(lo..hi) {
                let line_bit = bit - lo;
                words
                    .entry(line_bit / ECC_WORD_BITS)
                    .or_default()
                    .push(line_bit);
            }
        }
        if words.is_empty() {
            return (data, EccOutcome::Clean);
        }
        let mut corrected = 0u32;
        let mut uncorrectable = 0u32;
        for bits in words.values() {
            if bits.len() == 1 {
                // SEC: flip the bit back in the returned data.
                let bit = bits[0];
                data[bit as usize / 8] ^= 1 << (bit % 8);
                corrected += 1;
            } else {
                uncorrectable += 1;
            }
        }
        if uncorrectable > 0 {
            (data, EccOutcome::Uncorrectable(uncorrectable))
        } else {
            (data, EccOutcome::Corrected(corrected))
        }
    }

    /// Returns `true` if any bit of the given cache line is poisoned —
    /// the integrity-check primitive enclaves rely on (§4.4).
    pub fn line_is_poisoned(&self, key: RowKey, col: u32) -> bool {
        let lo = col as u64 * CACHE_LINE_BYTES * 8;
        let hi = lo + CACHE_LINE_BYTES * 8;
        self.poisoned
            .get(&key)
            .is_some_and(|bits| bits.range(lo..hi).next().is_some())
    }

    /// Returns `true` if any bit of the row is poisoned.
    pub fn row_is_poisoned(&self, key: RowKey) -> bool {
        self.poisoned.contains_key(&key)
    }

    /// Total poisoned bits across the device (metrics).
    pub fn poisoned_bits(&self) -> usize {
        self.poisoned_total
    }

    /// Number of materialized rows (memory accounting).
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    /// Copies an entire row's contents to another location (the OS
    /// remap/wear-leveling path uses this via the data path; provided
    /// here for verification in tests).
    pub fn copy_row(&mut self, from: RowKey, to: RowKey) {
        let data = self.rows.get(&from).cloned();
        match data {
            Some(d) => {
                self.rows.insert(to, d);
            }
            None => {
                self.rows.remove(&to);
            }
        }
        // Poison travels with the data.
        if let Some(old) = self.poisoned.remove(&to) {
            self.poisoned_total -= old.len();
        }
        if let Some(bits) = self.poisoned.remove(&from) {
            self.poisoned.insert(to, bits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: usize = CACHE_LINE_BYTES as usize;

    fn store() -> RowDataStore {
        RowDataStore::new(8 * LINE)
    }

    fn line(fill: u8) -> Vec<u8> {
        vec![fill; LINE]
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = store();
        s.write_line((0, 5), 3, &line(0xAB));
        assert_eq!(s.read_line((0, 5), 3), line(0xAB));
        assert_eq!(s.read_line((0, 5), 2), line(0x00), "untouched column");
        assert_eq!(s.materialized_rows(), 1);
    }

    #[test]
    fn unwritten_rows_read_zero() {
        let s = store();
        assert_eq!(s.read_line((1, 9), 0), line(0));
        assert_eq!(s.materialized_rows(), 0);
    }

    #[test]
    fn flip_corrupts_written_data_and_is_detectable() {
        let mut s = store();
        s.write_line((0, 1), 0, &line(0x00));
        s.flip_bit((0, 1), 10); // byte 1, bit 2
        let read = s.read_line((0, 1), 0);
        assert_eq!(read[1], 0b100);
        assert!(s.line_is_poisoned((0, 1), 0));
        assert!(!s.line_is_poisoned((0, 1), 1));
        assert!(s.row_is_poisoned((0, 1)));
        assert_eq!(s.poisoned_bits(), 1);
    }

    #[test]
    fn flip_on_unwritten_row_is_tracked() {
        let mut s = store();
        s.flip_bit((2, 7), 100);
        assert!(s.row_is_poisoned((2, 7)));
        assert_eq!(s.materialized_rows(), 0);
    }

    #[test]
    fn double_flip_restores_bit() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0xFF));
        s.flip_bit((0, 0), 4);
        s.flip_bit((0, 0), 4);
        assert_eq!(s.read_line((0, 0), 0), line(0xFF));
        assert!(!s.row_is_poisoned((0, 0)));
    }

    #[test]
    fn rewrite_clears_poison_for_that_line_only() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0));
        s.write_line((0, 0), 1, &line(0));
        s.flip_bit((0, 0), 5); // line 0
        s.flip_bit((0, 0), LINE as u64 * 8 + 5); // line 1
        s.write_line((0, 0), 0, &line(0x11));
        assert!(!s.line_is_poisoned((0, 0), 0), "rewrite heals line 0");
        assert!(s.line_is_poisoned((0, 0), 1), "line 1 still poisoned");
    }

    #[test]
    fn copy_row_moves_data_and_poison() {
        let mut s = store();
        s.write_line((0, 3), 2, &line(0x77));
        s.flip_bit((0, 3), 9);
        s.copy_row((0, 3), (1, 8));
        assert_eq!(s.read_line((1, 8), 2), line(0x77));
        assert!(s.row_is_poisoned((1, 8)));
        // Destination had stale poison? ensure copy overwrote cleanly.
        s.write_line((0, 4), 0, &line(1));
        s.copy_row((0, 9), (0, 4)); // copy from unwritten row clears dest
        assert_eq!(s.read_line((0, 4), 0), line(0));
    }

    #[test]
    #[should_panic(expected = "bit out of range")]
    fn flip_out_of_range_panics() {
        let mut s = store();
        s.flip_bit((0, 0), (8 * LINE * 8) as u64);
    }

    #[test]
    fn ecc_clean_line_reads_clean() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0x42));
        let (data, outcome) = s.read_line_ecc((0, 0), 0);
        assert_eq!(outcome, EccOutcome::Clean);
        assert_eq!(data, line(0x42));
    }

    #[test]
    fn ecc_corrects_single_bit_per_word() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0x00));
        // Two flips in two *different* 64-bit words of the same line.
        s.flip_bit((0, 0), 3); // word 0
        s.flip_bit((0, 0), 64 + 7); // word 1
        let (data, outcome) = s.read_line_ecc((0, 0), 0);
        assert_eq!(outcome, EccOutcome::Corrected(2));
        assert_eq!(data, line(0x00), "corrected data matches the original");
        // The raw read still shows the corruption.
        assert_ne!(s.read_line((0, 0), 0), line(0x00));
    }

    #[test]
    fn ecc_detects_double_bit_in_one_word() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0x00));
        s.flip_bit((0, 0), 10); // word 0
        s.flip_bit((0, 0), 20); // word 0 again
        s.flip_bit((0, 0), 70); // word 1: single, correctable
        let (data, outcome) = s.read_line_ecc((0, 0), 0);
        assert_eq!(outcome, EccOutcome::Uncorrectable(1));
        // Word 1's bit was still corrected; word 0 stays corrupted.
        assert_eq!(data[8], 0, "word 1 corrected");
        assert_ne!(data[1] & 0b100, 0, "word 0 bit 10 still flipped");
    }

    #[test]
    fn ecc_is_scoped_to_the_requested_line() {
        let mut s = store();
        s.write_line((0, 0), 0, &line(0));
        s.write_line((0, 0), 1, &line(0));
        s.flip_bit((0, 0), 5); // line 0
        let (_, outcome1) = s.read_line_ecc((0, 0), 1);
        assert_eq!(outcome1, EccOutcome::Clean, "line 1 unaffected");
    }
}
