//! The DRAM module: ranks of banks behind one command interface.
//!
//! [`DramModule`] is the device the memory controller programs. It
//! owns:
//!
//! - per-bank FSMs with bank-local timing ([`crate::bank`]);
//! - rank-level constraints (tRRD same/different bank group, the tFAW
//!   four-activate window, tRFC refresh occupancy);
//! - the refresh-group cursor each REF advances through (every row is
//!   covered once per tREFW, paper §2.1);
//! - internal row remapping ([`crate::remap`]) — commands address
//!   *logical* rows; disturbance physics run on *internal* rows;
//! - the disturbance model and flip sampling ([`crate::disturb`]);
//! - the optional in-DRAM TRR engine ([`crate::trr`]);
//! - sparse row data with poison tracking ([`crate::data`]).
//!
//! Flip events are queued and drained by the caller
//! ([`DramModule::drain_flips`]); rows in those events are reported in
//! logical coordinates, the only ones visible outside the device.

use crate::bank::{Bank, Disturbance, TimingSoA};
use crate::command::DdrCommand;
use crate::data::{EccOutcome, RowDataStore};
use crate::disturb::{DisturbanceProfile, FlipEvent};
use crate::remap::{RemapConfig, RowRemap};
use crate::stats::DramStats;
use crate::timing::TimingParams;
use crate::trr::{TrrConfig, TrrEngine};
use hammertime_common::geometry::BankId;
use hammertime_common::{Cycle, DetRng, Error, FaultClock, FaultKind, FaultPlan, Geometry, Result};
use hammertime_telemetry::{Event, Tracer};
use serde::{Deserialize, Serialize};

/// Whether the module/controller pair runs ECC on the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EccMode {
    /// Non-ECC DIMM: every flip reaches software.
    None,
    /// SEC-DED over 64-bit words: single-bit flips corrected, double
    /// flips detected (the server-DIMM configuration; Cojocar et al.
    /// showed it raises, not removes, the bar — experiment E10).
    SecDed,
}

/// Full device configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramConfig {
    /// Organization.
    pub geometry: Geometry,
    /// Timing constraints.
    pub timing: TimingParams,
    /// Disturbance (Rowhammer) parameters.
    pub disturbance: DisturbanceProfile,
    /// In-DRAM TRR, if the module ships one.
    pub trr: Option<TrrConfig>,
    /// Internal row remapping.
    pub remap: RemapConfig,
    /// RNG seed for flip sampling, remap layout, and TRR reservoirs.
    pub seed: u64,
    /// ECC mode on the data path.
    pub ecc: EccMode,
    /// Opt-in batched disturbance accounting: ACTs log `(aggressor,
    /// count)` runs in O(1) and victims settle at flush boundaries
    /// (refresh, RD/WR, [`DramModule::sync_disturbances`]), so an
    /// N-ACT hammer burst costs O(unique aggressor runs) instead of
    /// O(N x blast diameter). Aggregated pressure is bit-exact with
    /// the per-ACT path for dyadic decays (0.5, 1.0) and within FP
    /// rounding otherwise, but flip *timing* and RNG draw order differ
    /// — leave this off (the default) whenever byte-identical output
    /// matters.
    pub batched_pressure: bool,
    /// Fault-injection plan for device-side faults (dropped/ghost REF,
    /// TRR sampler misses, counter saturation). `None` — the default —
    /// is byte-identical to a faultless device: no hook draws from any
    /// RNG.
    pub faults: Option<FaultPlan>,
    /// Cycle-stamped event tracer. `None` — the default — costs one
    /// `is_none()` check per issued command and nothing else; `Some`
    /// records every accepted command, flip, retention check, TRR
    /// action, and injected fault. Serializes as `null` either way, so
    /// a traced config's JSON (as embedded in the trace itself) equals
    /// the untraced one.
    pub tracer: Option<Tracer>,
}

impl DramConfig {
    /// A small, fast configuration for tests: tiny geometry and timing,
    /// aggressive disturbance, no TRR, no remapping.
    pub fn test_config(mac: u64) -> DramConfig {
        DramConfig {
            geometry: Geometry::small_test(),
            timing: TimingParams::tiny_test(),
            disturbance: DisturbanceProfile {
                mac,
                blast_radius: 2,
                distance_decay: 0.5,
                flip_prob: 1.0,
                overshoot_step: 0.05,
            },
            trr: None,
            remap: RemapConfig::identity(),
            seed: 42,
            ecc: EccMode::None,
            batched_pressure: false,
            faults: None,
            tracer: None,
        }
    }

    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<()> {
        self.geometry.validate()?;
        self.timing.validate()?;
        self.disturbance.validate()?;
        Ok(())
    }
}

/// Rank-level timing state.
#[derive(Debug, Clone)]
struct RankState {
    /// Last ACT in this rank: (time, bank group).
    last_act: Option<(Cycle, u32)>,
    /// Times of the most recent 4 ACTs (tFAW window): a fixed ring —
    /// `faw[faw_head]` is the oldest entry once `faw_len` reaches 4.
    faw: [Cycle; 4],
    faw_len: u8,
    faw_head: u8,
    /// Rank unusable until this time (tRFC after REF).
    busy_until: Cycle,
    /// Next refresh group the REF cursor will cover.
    next_group: u32,
}

impl RankState {
    fn new() -> RankState {
        RankState {
            last_act: None,
            faw: [Cycle::ZERO; 4],
            faw_len: 0,
            faw_head: 0,
            busy_until: Cycle::ZERO,
            next_group: 0,
        }
    }

    #[inline]
    fn earliest_act(&self, bank_group: u32, t: &TimingParams) -> Cycle {
        let mut earliest = self.busy_until;
        if let Some((when, bg)) = self.last_act {
            let gap = if bg == bank_group {
                t.t_rrd_l
            } else {
                t.t_rrd_s
            };
            earliest = earliest.max(when + gap);
        }
        if self.faw_len == 4 {
            earliest = earliest.max(self.faw[self.faw_head as usize] + t.t_faw);
        }
        earliest
    }

    #[inline]
    fn record_act(&mut self, now: Cycle, bank_group: u32) {
        self.last_act = Some((now, bank_group));
        if self.faw_len == 4 {
            // Overwrite the oldest entry and advance the ring head.
            self.faw[self.faw_head as usize] = now;
            self.faw_head = (self.faw_head + 1) & 3;
        } else {
            self.faw[((self.faw_head + self.faw_len) & 3) as usize] = now;
            self.faw_len += 1;
        }
    }
}

/// Outcome of issuing one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandOutcome {
    /// When the command's effect completes: data on the bus for RD/WR,
    /// rank free again for REF, bank free for REF_NEIGHBORS; equals the
    /// issue time for ACT/PRE.
    pub done: Cycle,
    /// Bit flips this command's disturbance generated.
    pub flips_generated: u32,
}

/// The simulated DRAM device.
///
/// `Clone` supports epoch checkpointing: a clone is an independent,
/// byte-identical snapshot of the device (a cloned *traced* device
/// shares the original's tracer handle, and each clone emits its own
/// closing [`Event::DeviceStats`] on drop).
#[derive(Debug, Clone)]
pub struct DramModule {
    config: DramConfig,
    /// FSM/timing state of every bank, struct-of-arrays: scheduler
    /// probes touch one contiguous column per field. Column `b` pairs
    /// with `banks[b]`.
    soa: TimingSoA,
    banks: Vec<Bank>,
    remaps: Vec<RowRemap>,
    ranks: Vec<RankState>,
    trr: Option<TrrEngine>,
    data: RowDataStore,
    rng: DetRng,
    flips: Vec<FlipEvent>,
    stats: DramStats,
    rows_per_group: u32,
    faults: Option<FaultClock>,
    /// Latest traced command issue time; stamps the final
    /// [`Event::DeviceStats`] record. Only maintained when tracing.
    last_issue: Cycle,
}

/// Component salt separating the device's fault-decision streams from
/// the memory controller's under one [`FaultPlan`].
const DRAM_FAULT_SALT: u64 = 0xD1AA;

/// Builds the uniform too-early rejection off the hot path: the error
/// string is only formatted when a command actually violates timing.
#[cold]
#[inline(never)]
fn too_early(cmd: &DdrCommand, now: Cycle, earliest: Cycle) -> Error {
    Error::Timing(format!("{cmd} at {now} before earliest {earliest}"))
}

impl DramModule {
    /// Builds a device from its configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the configuration is inconsistent.
    pub fn new(config: DramConfig) -> Result<DramModule> {
        config.validate()?;
        let g = config.geometry;
        let mut rng = DetRng::new(config.seed);
        let mut remap_rng = rng.fork(0xEEAA);
        let total_banks = g.total_banks() as usize;
        let faults = config.faults.map(|p| FaultClock::new(p, DRAM_FAULT_SALT));
        let banks: Vec<Bank> = (0..total_banks)
            .map(|_| {
                let mut bank = Bank::new(
                    g.rows_per_bank(),
                    g.rows_per_subarray,
                    config.disturbance,
                    config.batched_pressure,
                );
                if let Some(p) = &config.faults {
                    bank.set_act_saturation(p.disturb_saturation);
                }
                bank
            })
            .collect();
        let remaps: Vec<RowRemap> = (0..total_banks)
            .map(|_| {
                RowRemap::new(
                    g.rows_per_bank(),
                    g.rows_per_subarray,
                    config.remap,
                    &mut remap_rng,
                )
            })
            .collect();
        let trr = config
            .trr
            .map(|c| TrrEngine::new(c, total_banks, rng.fork(0x7171)));
        let refs_per_window = config.timing.refs_per_window().max(1);
        let rows_per_group = (g.rows_per_bank() as u64).div_ceil(refs_per_window).max(1) as u32;
        let module = DramModule {
            soa: TimingSoA::new(total_banks),
            banks,
            remaps,
            ranks: (0..(g.channels * g.ranks) as usize)
                .map(|_| RankState::new())
                .collect(),
            trr,
            data: RowDataStore::new(g.row_bytes() as usize),
            rng,
            flips: Vec::new(),
            stats: DramStats::default(),
            rows_per_group,
            faults,
            last_issue: Cycle::ZERO,
            config,
        };
        if let Some(tracer) = &module.config.tracer {
            // The embedded config (tracer rendered as `null`) makes the
            // trace self-describing: replay rebuilds this exact device.
            let config_json =
                serde_json::to_string(&module.config).expect("device config serializes");
            tracer.emit(Cycle::ZERO, Event::DeviceReset { config_json });
        }
        Ok(module)
    }

    /// The device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Device statistics so far, with the live fault-injection tally
    /// folded in.
    pub fn stats(&self) -> DramStats {
        let mut s = self.stats;
        s.fault_injections = self.fault_injections();
        s
    }

    /// Total ACTs the in-DRAM TRR sampler has observed so far (0 when
    /// TRR is absent). The memory controller snapshots this around a
    /// demand ACT to charge sampler work to the issuing tenant.
    pub fn trr_samples(&self) -> u64 {
        self.trr.as_ref().map_or(0, |t| t.samples)
    }

    /// Total device-side faults injected so far: rate-based decisions
    /// that fired (dropped/ghost REFs, TRR sampler misses) plus ACT
    /// increments swallowed by counter saturation.
    pub fn fault_injections(&self) -> u64 {
        let clamps: u64 = self.banks.iter().map(|b| b.saturation_clamps).sum();
        self.faults.as_ref().map_or(0, FaultClock::total_injected) + clamps
    }

    /// Drains and returns accumulated flip events (logical rows).
    pub fn drain_flips(&mut self) -> Vec<FlipEvent> {
        std::mem::take(&mut self.flips)
    }

    /// Rows covered per REF command.
    pub fn rows_per_refresh_group(&self) -> u32 {
        self.rows_per_group
    }

    fn rank_index(&self, channel: u32, rank: u32) -> usize {
        (channel * self.config.geometry.ranks + rank) as usize
    }

    fn flat_bank(&self, bank: &BankId) -> usize {
        bank.flat(&self.config.geometry)
    }

    /// The earliest cycle at which `cmd` may legally issue, or
    /// [`Cycle::MAX`] if it is not legal in the current state (e.g. REF
    /// with a bank open — the controller must precharge first).
    #[inline]
    pub fn earliest(&self, cmd: &DdrCommand) -> Cycle {
        let t = &self.config.timing;
        match cmd {
            DdrCommand::Act { bank, .. } => {
                let b = self.flat_bank(bank);
                let r = self.rank_index(bank.channel, bank.rank);
                self.soa
                    .earliest_act(b)
                    .max(self.ranks[r].earliest_act(bank.bank_group, t))
            }
            DdrCommand::Pre { bank } => {
                let b = self.flat_bank(bank);
                let r = self.rank_index(bank.channel, bank.rank);
                self.soa.earliest_pre(b).max(self.ranks[r].busy_until)
            }
            DdrCommand::PreAll { channel, rank } => {
                let r = self.rank_index(*channel, *rank);
                let mut earliest = self.ranks[r].busy_until;
                for i in self.bank_range(*channel, *rank) {
                    earliest = earliest.max(self.soa.earliest_pre(i));
                }
                earliest
            }
            DdrCommand::Rd { bank, .. } | DdrCommand::Wr { bank, .. } => {
                let b = self.flat_bank(bank);
                let r = self.rank_index(bank.channel, bank.rank);
                self.soa.earliest_rdwr(b).max(self.ranks[r].busy_until)
            }
            DdrCommand::Ref { channel, rank } => {
                let r = self.rank_index(*channel, *rank);
                let mut earliest = self.ranks[r].busy_until;
                for i in self.bank_range(*channel, *rank) {
                    if self.soa.is_active(i) {
                        return Cycle::MAX; // must PRE first
                    }
                    earliest = earliest.max(self.soa.earliest_act(i));
                }
                earliest
            }
            DdrCommand::RefNeighbors { bank, .. } => {
                let b = self.flat_bank(bank);
                if self.soa.is_active(b) {
                    return Cycle::MAX;
                }
                let r = self.rank_index(bank.channel, bank.rank);
                self.soa.earliest_act(b).max(self.ranks[r].busy_until)
            }
        }
    }

    /// Flat-bank index range of one rank. Banks are laid out
    /// rank-contiguously (`flat = rank_index * banks_per_rank + bank`),
    /// so a rank's banks form one dense range — no per-bank membership
    /// filtering needed on the REF/PRE-all paths.
    fn bank_range(&self, channel: u32, rank: u32) -> std::ops::Range<usize> {
        let per_rank = self.config.geometry.banks_per_rank() as usize;
        let start = self.rank_index(channel, rank) * per_rank;
        start..start + per_rank
    }

    /// Issues `cmd` at time `now`.
    ///
    /// # Errors
    ///
    /// [`Error::Timing`] if `now` precedes [`DramModule::earliest`];
    /// [`Error::Protocol`] for illegal state transitions.
    // Inlined so untraced callers compile down to the one `is_none()`
    // branch plus a direct call of the real issue path.
    #[inline]
    pub fn issue(&mut self, cmd: &DdrCommand, now: Cycle) -> Result<CommandOutcome> {
        // Zero-cost-when-off contract: this check is the whole overhead
        // of the telemetry layer on an untraced device.
        if self.config.tracer.is_none() {
            return self.issue_inner(cmd, now);
        }
        self.issue_traced(cmd, now)
    }

    /// [`DramModule::issue`] minus the tracer check: the "telemetry
    /// layer absent" baseline for the zero-cost-when-off bench gate.
    /// Not part of the simulator API — on a traced device this would
    /// silently drop records.
    #[doc(hidden)]
    #[inline]
    pub fn issue_bypassing_tracer(
        &mut self,
        cmd: &DdrCommand,
        now: Cycle,
    ) -> Result<CommandOutcome> {
        self.issue_inner(cmd, now)
    }

    /// The traced issue path: runs the command, then records it and
    /// any flips it generated.
    #[cold]
    fn issue_traced(&mut self, cmd: &DdrCommand, now: Cycle) -> Result<CommandOutcome> {
        let pre_flips = self.flips.len();
        let out = self.issue_inner(cmd, now)?;
        self.last_issue = self.last_issue.max(now);
        let tracer = self.config.tracer.clone().expect("tracer checked above");
        tracer.emit(now, Event::Command { cmd: cmd.into() });
        // Flips this command generated (including batched settles it
        // triggered) trail their command, in sampling order.
        for f in &self.flips[pre_flips..] {
            tracer.emit(
                now,
                Event::Flip {
                    flat_bank: f.flat_bank as u64,
                    victim_row: f.victim_row,
                    aggressor_row: f.aggressor_row,
                    bit: f.bit,
                },
            );
        }
        Ok(out)
    }

    /// Fused earliest + issue: computes the command's earliest-legal
    /// cycle, clamps it up to `floor` (the caller's notion of "now"),
    /// issues there, and returns the chosen cycle alongside the
    /// outcome. Exactly equivalent to
    /// `let at = dram.earliest(cmd).max(floor); dram.issue(cmd, at)`
    /// but prices the timing state once instead of twice — the
    /// difference is most of a hammer loop's budget, so tight drivers
    /// (benches, device-level attack scripts) should prefer this
    /// entry point.
    ///
    /// # Errors
    ///
    /// [`Error::Timing`] when the command is never legal in the
    /// current state (`earliest` = [`Cycle::MAX`]);
    /// [`Error::Protocol`] for illegal arguments, as with
    /// [`DramModule::issue`].
    #[inline]
    pub fn issue_at_earliest(
        &mut self,
        cmd: &DdrCommand,
        floor: Cycle,
    ) -> Result<(Cycle, CommandOutcome)> {
        if self.config.tracer.is_none() {
            return self.issue_at_earliest_inner(cmd, floor);
        }
        let earliest = self.earliest(cmd);
        if earliest == Cycle::MAX {
            return Err(too_early(cmd, floor, Cycle::MAX));
        }
        let at = earliest.max(floor);
        self.issue_traced(cmd, at).map(|out| (at, out))
    }

    /// [`DramModule::issue_at_earliest`] minus the tracer check; the
    /// fused counterpart of [`DramModule::issue_bypassing_tracer`].
    #[doc(hidden)]
    #[inline]
    pub fn issue_at_earliest_bypassing_tracer(
        &mut self,
        cmd: &DdrCommand,
        floor: Cycle,
    ) -> Result<(Cycle, CommandOutcome)> {
        self.issue_at_earliest_inner(cmd, floor)
    }

    /// Issues `pairs` back-to-back ACT/PRE pairs hammering `row` of
    /// `bank`, each command at its earliest legal cycle (≥ the running
    /// clock, starting from `floor`). Returns the cycle of the final
    /// PRE.
    ///
    /// State evolution is identical to calling
    /// [`DramModule::issue_at_earliest`] with the ACT and PRE
    /// alternately `2 × pairs` times — same stats, flips, TRR
    /// observations, and timing columns — but the bank/rank timing
    /// recurrence (tRC/tRAS/tRP plus the rank's tRRD/tFAW window)
    /// lives in registers across the burst instead of round-tripping
    /// through the SoA columns per command. A hammer loop is a serial
    /// dependency chain through those columns, so keeping it in
    /// registers is worth several× on the device's ACT throughput.
    /// Traced devices take the per-command path so every command and
    /// flip is still recorded in order.
    ///
    /// # Errors
    ///
    /// [`Error::Timing`] if the bank is active at entry (must PRE
    /// first); [`Error::Protocol`] for an out-of-range row.
    pub fn issue_hammer_pairs(
        &mut self,
        bank: &BankId,
        row: u32,
        pairs: u32,
        floor: Cycle,
    ) -> Result<Cycle> {
        if self.config.tracer.is_none() {
            return self.hammer_pairs_inner(bank, row, pairs, floor);
        }
        self.hammer_pairs_per_command(bank, row, pairs, floor)
    }

    /// [`DramModule::issue_hammer_pairs`] minus the tracer check; the
    /// burst counterpart of [`DramModule::issue_bypassing_tracer`].
    #[doc(hidden)]
    pub fn issue_hammer_pairs_bypassing_tracer(
        &mut self,
        bank: &BankId,
        row: u32,
        pairs: u32,
        floor: Cycle,
    ) -> Result<Cycle> {
        self.hammer_pairs_inner(bank, row, pairs, floor)
    }

    /// The traced burst path: per-command, so the tracer sees every
    /// ACT/PRE and each flip trails its command.
    #[cold]
    fn hammer_pairs_per_command(
        &mut self,
        bank: &BankId,
        row: u32,
        pairs: u32,
        mut now: Cycle,
    ) -> Result<Cycle> {
        let act = DdrCommand::Act { bank: *bank, row };
        let pre = DdrCommand::Pre { bank: *bank };
        for _ in 0..pairs {
            now = self.issue_at_earliest(&act, now)?.0;
            now = self.issue_at_earliest(&pre, now)?.0;
        }
        Ok(now)
    }

    /// The register-resident burst loop. The SoA column, the rank's
    /// activation window, and the stats counters are checked out into
    /// locals, the recurrence runs, and the final state is written
    /// back — per-iteration memory traffic is only the disturbance
    /// bookkeeping ([`Bank::record_act`]) and any sampled flips.
    fn hammer_pairs_inner(
        &mut self,
        bank: &BankId,
        row: u32,
        pairs: u32,
        floor: Cycle,
    ) -> Result<Cycle> {
        if pairs == 0 {
            return Ok(floor);
        }
        let b = self.flat_bank(bank);
        let r = self.rank_index(bank.channel, bank.rank);
        let g = self.config.geometry;
        if row >= g.rows_per_bank() {
            return Err(Error::Protocol(format!(
                "ACT row {row} out of range ({} rows/bank)",
                g.rows_per_bank()
            )));
        }
        if self.soa.is_active(b) {
            return Err(too_early(
                &DdrCommand::Act { bank: *bank, row },
                floor,
                Cycle::MAX,
            ));
        }
        let internal = self.remaps[b].to_internal(row);
        let t = self.config.timing;
        let busy = self.ranks[r].busy_until;
        let bg = bank.bank_group;
        // Check out the recurrence state.
        let mut ready_act = self.soa.ready_act[b];
        let mut last_act = self.ranks[r].last_act;
        let mut faw = self.ranks[r].faw;
        let mut faw_head = self.ranks[r].faw_head;
        let mut faw_len = self.ranks[r].faw_len;
        let trr_on = self.trr.is_some();
        let mut now = floor;
        let mut at_act = floor;
        for _ in 0..pairs {
            // ACT at its earliest: the same maxes as `earliest()`.
            at_act = ready_act.max(busy).max(now);
            if let Some((when, last_bg)) = last_act {
                let gap = if last_bg == bg { t.t_rrd_l } else { t.t_rrd_s };
                at_act = at_act.max(when + gap);
            }
            if faw_len == 4 {
                at_act = at_act.max(faw[faw_head as usize] + t.t_faw);
                faw[faw_head as usize] = at_act;
                faw_head = (faw_head + 1) & 3;
            } else {
                faw[((faw_head + faw_len) & 3) as usize] = at_act;
                faw_len += 1;
            }
            last_act = Some((at_act, bg));
            let disturbances = self.banks[b].record_act(internal, at_act);
            if trr_on {
                // Same fault hook as the per-command ACT arm; the
                // tracer is off on this path, so a fired miss only
                // skips the observation.
                let missed = self
                    .faults
                    .as_mut()
                    .is_some_and(|fc| fc.fire(FaultKind::TrrSamplerMiss));
                if !missed {
                    if let Some(trr) = &mut self.trr {
                        trr.observe_act(b, internal);
                    }
                }
            }
            if !disturbances.is_empty() {
                self.sample_flips_of(b, at_act, internal, &disturbances);
            }
            // PRE at its earliest: ready_pre = at_act + tRAS ≥ at_act.
            let at_pre = (at_act + t.t_ras).max(busy);
            ready_act = (at_pre + t.t_rp).max(at_act + t.t_rc);
            now = at_pre;
        }
        // Write back: the burst ends precharged, with the same column
        // values a per-command loop would have left.
        self.soa.open_row[b] = crate::bank::NO_OPEN_ROW;
        self.soa.opened_at[b] = at_act;
        self.soa.ready_act[b] = ready_act;
        self.soa.ready_pre[b] = at_act + t.t_ras;
        self.soa.ready_rdwr[b] = at_act + t.t_rcd;
        let rank = &mut self.ranks[r];
        rank.last_act = last_act;
        rank.faw = faw;
        rank.faw_head = faw_head;
        rank.faw_len = faw_len;
        self.stats.acts += u64::from(pairs);
        self.stats.pres += u64::from(pairs);
        self.banks[b].pres += u64::from(pairs);
        Ok(now)
    }

    /// The fused fast path: ACT and PRE (the hammer-loop hot pair)
    /// reuse the per-arm earliest they just computed as the issue
    /// cycle; every other command class falls back to the probe +
    /// issue pair.
    #[inline]
    fn issue_at_earliest_inner(
        &mut self,
        cmd: &DdrCommand,
        floor: Cycle,
    ) -> Result<(Cycle, CommandOutcome)> {
        match *cmd {
            DdrCommand::Act { bank, row } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let earliest = self
                    .soa
                    .earliest_act(b)
                    .max(self.ranks[r].earliest_act(bank.bank_group, &self.config.timing));
                if earliest == Cycle::MAX {
                    return Err(too_early(cmd, floor, Cycle::MAX));
                }
                let at = earliest.max(floor);
                self.act_body(bank, row, b, r, at).map(|out| (at, out))
            }
            DdrCommand::Pre { bank } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let at = self
                    .soa
                    .earliest_pre(b)
                    .max(self.ranks[r].busy_until)
                    .max(floor);
                Ok((at, self.pre_body(b, at)))
            }
            _ => {
                let earliest = self.earliest(cmd);
                if earliest == Cycle::MAX {
                    return Err(too_early(cmd, floor, Cycle::MAX));
                }
                let at = earliest.max(floor);
                self.issue_inner(cmd, at).map(|out| (at, out))
            }
        }
    }

    /// The ACT state transition, after the caller has gated `now`
    /// against the ACT earliest for flat bank `b` / rank `r`.
    #[inline]
    fn act_body(
        &mut self,
        bank: BankId,
        row: u32,
        b: usize,
        r: usize,
        now: Cycle,
    ) -> Result<CommandOutcome> {
        let g = self.config.geometry;
        if row >= g.rows_per_bank() {
            return Err(Error::Protocol(format!(
                "ACT row {row} out of range ({} rows/bank)",
                g.rows_per_bank()
            )));
        }
        let internal = self.remaps[b].to_internal(row);
        self.soa
            .act(b, internal, now, &self.config.timing)
            .expect("gated on earliest_act");
        let disturbances = self.banks[b].record_act(internal, now);
        self.ranks[r].record_act(now, bank.bank_group);
        self.stats.acts += 1;
        if let Some(trr) = &mut self.trr {
            // Fault hook: a blackbox sampler sometimes misses
            // the ACT entirely (what TRRespass patterns bank on).
            let missed = self
                .faults
                .as_mut()
                .is_some_and(|fc| fc.fire(FaultKind::TrrSamplerMiss));
            if !missed {
                trr.observe_act(b, internal);
            } else if let Some(tracer) = &self.config.tracer {
                tracer.emit(
                    now,
                    Event::FaultInjected {
                        kind: FaultKind::TrrSamplerMiss.name().into(),
                    },
                );
            }
        }
        let flips_generated = if disturbances.is_empty() {
            0
        } else {
            self.sample_flips_of(b, now, internal, &disturbances)
        };
        Ok(CommandOutcome {
            done: now,
            flips_generated,
        })
    }

    /// The PRE state transition, after the caller has gated `now`
    /// against the PRE earliest for flat bank `b`. Infallible: PRE on
    /// an idle bank is a counted no-op.
    #[inline]
    fn pre_body(&mut self, b: usize, now: Cycle) -> CommandOutcome {
        if self
            .soa
            .pre(b, now, &self.config.timing)
            .expect("gated on earliest_pre")
        {
            self.banks[b].pres += 1;
        }
        self.stats.pres += 1;
        CommandOutcome {
            done: now,
            flips_generated: 0,
        }
    }

    /// The untraced issue path; all device state changes live here.
    ///
    /// Each arm computes its own earliest-legal cycle (exactly
    /// [`DramModule::earliest`] for that command class), gates on it
    /// once, and then applies the state transition — the legality
    /// check and the transition share one pass over the SoA columns
    /// instead of recomputing `earliest` twice per issue.
    fn issue_inner(&mut self, cmd: &DdrCommand, now: Cycle) -> Result<CommandOutcome> {
        match *cmd {
            DdrCommand::Act { bank, row } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let earliest = self
                    .soa
                    .earliest_act(b)
                    .max(self.ranks[r].earliest_act(bank.bank_group, &self.config.timing));
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                self.act_body(bank, row, b, r, now)
            }
            DdrCommand::Pre { bank } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let earliest = self.soa.earliest_pre(b).max(self.ranks[r].busy_until);
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                Ok(self.pre_body(b, now))
            }
            DdrCommand::PreAll { channel, rank } => {
                let r = self.rank_index(channel, rank);
                let range = self.bank_range(channel, rank);
                let t = &self.config.timing;
                let mut earliest = self.ranks[r].busy_until;
                for i in range.clone() {
                    earliest = earliest.max(self.soa.earliest_pre(i));
                }
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                for i in range {
                    if self.soa.pre(i, now, t).expect("gated on earliest_pre") {
                        self.banks[i].pres += 1;
                    }
                }
                self.stats.pres += 1;
                Ok(CommandOutcome {
                    done: now,
                    flips_generated: 0,
                })
            }
            DdrCommand::Rd {
                bank,
                col,
                auto_pre,
            } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let earliest = self.soa.earliest_rdwr(b).max(self.ranks[r].busy_until);
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                if col >= self.config.geometry.columns {
                    return Err(Error::Protocol(format!("RD col {col} out of range")));
                }
                // A read observes data: settle deferred disturbance so
                // its poison is in place before the burst.
                self.settle_bank(b, now);
                let t = &self.config.timing;
                let (_, done) = self
                    .soa
                    .rd(b, now, auto_pre, t)
                    .expect("gated on earliest_rdwr");
                if auto_pre {
                    self.banks[b].pres += 1;
                }
                self.stats.rds += 1;
                Ok(CommandOutcome {
                    done,
                    flips_generated: 0,
                })
            }
            DdrCommand::Wr {
                bank,
                col,
                auto_pre,
            } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                let earliest = self.soa.earliest_rdwr(b).max(self.ranks[r].busy_until);
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                if col >= self.config.geometry.columns {
                    return Err(Error::Protocol(format!("WR col {col} out of range")));
                }
                self.settle_bank(b, now);
                let t = &self.config.timing;
                let (_, done) = self
                    .soa
                    .wr(b, now, auto_pre, t)
                    .expect("gated on earliest_rdwr");
                if auto_pre {
                    self.banks[b].pres += 1;
                }
                self.stats.wrs += 1;
                Ok(CommandOutcome {
                    done,
                    flips_generated: 0,
                })
            }
            DdrCommand::Ref { channel, rank } => {
                let r = self.rank_index(channel, rank);
                let mut earliest = self.ranks[r].busy_until;
                for i in self.bank_range(channel, rank) {
                    if self.soa.is_active(i) {
                        // Must PRE first; never legal in this state.
                        return Err(too_early(cmd, now, Cycle::MAX));
                    }
                    earliest = earliest.max(self.soa.earliest_act(i));
                }
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                let done = now + self.config.timing.t_rfc;
                let banks: Vec<usize> = self.bank_range(channel, rank).collect();
                // Refresh the current group of internal rows in every bank.
                let group = self.ranks[r].next_group;
                let lo = group * self.rows_per_group;
                let hi = (lo + self.rows_per_group).min(self.config.geometry.rows_per_bank());
                // Fault hooks. A *dropped* REF keeps its timing, cursor
                // and busy accounting (the controller believes it
                // happened) but restores no rows. A *ghost* REF reports
                // covering two cursor groups while restoring one, so the
                // skipped group silently loses a slot per wrap.
                let dropped = self
                    .faults
                    .as_mut()
                    .is_some_and(|fc| fc.fire(FaultKind::DroppedRef));
                let ghost = self
                    .faults
                    .as_mut()
                    .is_some_and(|fc| fc.fire(FaultKind::GhostRef));
                if let Some(tracer) = &self.config.tracer {
                    if dropped {
                        tracer.emit(
                            now,
                            Event::FaultInjected {
                                kind: FaultKind::DroppedRef.name().into(),
                            },
                        );
                    }
                    if ghost {
                        tracer.emit(
                            now,
                            Event::FaultInjected {
                                kind: FaultKind::GhostRef.name().into(),
                            },
                        );
                    }
                }
                for &b in &banks {
                    // Pending ACTs precede this REF: settle (and flip)
                    // before the covered rows reset.
                    self.settle_bank(b, now);
                    if !dropped {
                        for internal in lo..hi {
                            self.banks[b].refresh_row(internal, now);
                        }
                    }
                    self.soa.block_until(b, done);
                }
                let groups = self
                    .config
                    .geometry
                    .rows_per_bank()
                    .div_ceil(self.rows_per_group);
                let advance = if ghost { 2 } else { 1 };
                self.ranks[r].next_group = (group + advance) % groups;
                self.ranks[r].busy_until = done;
                self.stats.refs += 1;
                // TRR piggybacks targeted refreshes on the REF.
                if let Some(trr) = &mut self.trr {
                    let radius = trr.radius();
                    let targets = trr.on_ref(&banks);
                    for (b, aggressor_rows) in targets {
                        for agg in aggressor_rows {
                            for victim in self.banks[b].neighbors_within(agg, radius) {
                                self.banks[b].refresh_row(victim, now);
                                self.stats.trr_refresh_rows += 1;
                                if let Some(tracer) = &self.config.tracer {
                                    tracer.emit(
                                        now,
                                        Event::TrrRefresh {
                                            flat_bank: b as u64,
                                            row: self.remaps[b].to_logical(victim),
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                Ok(CommandOutcome {
                    done,
                    flips_generated: 0,
                })
            }
            DdrCommand::RefNeighbors { bank, row, radius } => {
                let b = self.flat_bank(&bank);
                let r = self.rank_index(bank.channel, bank.rank);
                if self.soa.is_active(b) {
                    // Must PRE first; never legal in this state.
                    return Err(too_early(cmd, now, Cycle::MAX));
                }
                let earliest = self.soa.earliest_act(b).max(self.ranks[r].busy_until);
                if now < earliest {
                    return Err(too_early(cmd, now, earliest));
                }
                let g = self.config.geometry;
                if row >= g.rows_per_bank() {
                    return Err(Error::Protocol(format!("REFN row {row} out of range")));
                }
                let internal = self.remaps[b].to_internal(row);
                self.settle_bank(b, now);
                let victims = self.banks[b].neighbors_within(internal, radius);
                // Each refreshed row costs one internal row cycle.
                let done = now + self.config.timing.t_rc * victims.len().max(1) as u64;
                for v in &victims {
                    self.banks[b].refresh_row(*v, now);
                    self.stats.ref_neighbor_rows += 1;
                }
                self.soa.block_until(b, done);
                Ok(CommandOutcome {
                    done,
                    flips_generated: 0,
                })
            }
        }
    }

    /// Functional data write of one cache line (logical coordinates).
    ///
    /// The timing of the enclosing WR command is handled by
    /// [`DramModule::issue`]; this is the data path.
    pub fn write_line(&mut self, bank: &BankId, logical_row: u32, col: u32, data: &[u8]) {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        self.data.write_line((b, internal), col, data);
    }

    /// Functional data read of one cache line (logical coordinates).
    ///
    /// Returns the bytes and whether software observes corruption:
    /// without ECC, any poisoned bit; with SEC-DED, only uncorrectable
    /// (multi-bit-per-word) damage — single flips are silently
    /// corrected in the returned data.
    pub fn read_line(&self, bank: &BankId, logical_row: u32, col: u32) -> (Vec<u8>, bool) {
        let (data, outcome) = self.read_line_detailed(bank, logical_row, col);
        let visible = match (self.config.ecc, outcome) {
            (EccMode::None, EccOutcome::Clean) => false,
            (EccMode::None, _) => true,
            (EccMode::SecDed, EccOutcome::Uncorrectable(_)) => true,
            (EccMode::SecDed, _) => false,
        };
        (data, visible)
    }

    /// Like [`DramModule::read_line`] but reporting the full ECC
    /// outcome (used by the ECC ablation, E10). Without ECC the raw
    /// bytes are returned but the outcome still classifies the
    /// underlying damage.
    pub fn read_line_detailed(
        &self,
        bank: &BankId,
        logical_row: u32,
        col: u32,
    ) -> (Vec<u8>, EccOutcome) {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        let key = (b, internal);
        match self.config.ecc {
            EccMode::SecDed => self.data.read_line_ecc(key, col),
            EccMode::None => {
                let (_, outcome) = self.data.read_line_ecc(key, col);
                (self.data.read_line(key, col), outcome)
            }
        }
    }

    /// Returns `true` if any bit of the logical row is poisoned.
    pub fn row_is_poisoned(&self, bank: &BankId, logical_row: u32) -> bool {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        self.data.row_is_poisoned((b, internal))
    }

    /// Checks retention of a logical row at `now`: if the row has gone
    /// unrefreshed for longer than `margin` refresh windows, its cells
    /// decay — a retention failure is recorded and the method returns
    /// `true`. Models what happens when a defense (or attack) starves
    /// the refresh schedule.
    pub fn check_retention(
        &mut self,
        bank: &BankId,
        logical_row: u32,
        now: Cycle,
        margin: f64,
    ) -> bool {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        let last = self.banks[b].row_state(internal).victim.last_refresh;
        let limit = (self.config.timing.t_refw as f64 * margin) as u64;
        let decayed = now.delta(last) > limit;
        if decayed {
            self.stats.retention_decays += 1;
        }
        if let Some(tracer) = &self.config.tracer {
            tracer.emit(
                now,
                Event::RetentionCheck {
                    bank: *bank,
                    row: logical_row,
                    margin,
                    decayed,
                },
            );
        }
        decayed
    }

    /// Hammer pressure currently accumulated on a logical row —
    /// white-box introspection for tests and the oracle defense.
    pub fn row_pressure(&self, bank: &BankId, logical_row: u32) -> f64 {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        self.banks[b].row_state(internal).victim.pressure
    }

    /// ACT count of a logical row since its last refresh (white-box).
    pub fn row_acts_since_refresh(&self, bank: &BankId, logical_row: u32) -> u32 {
        let b = self.flat_bank(bank);
        let internal = self.remaps[b].to_internal(logical_row);
        self.banks[b].row_state(internal).acts_since_refresh
    }

    /// The logical rows whose *internal* position differs from their
    /// logical one, per bank (used by inference accuracy scoring).
    pub fn remapped_logical_rows(&self, bank: &BankId) -> Vec<u32> {
        let b = self.flat_bank(bank);
        (0..self.config.geometry.rows_per_bank())
            .filter(|&r| self.remaps[b].to_internal(r) != r)
            .collect()
    }

    /// The open row of a bank, if any (controller-visible state).
    pub fn open_row(&self, bank: &BankId) -> Option<u32> {
        let b = self.flat_bank(bank);
        self.soa
            .open_row(b)
            .map(|internal| self.remaps[b].to_logical(internal))
    }

    /// Draws bit flips for a batch of disturbances in `(internal
    /// aggressor row, disturbance)` form: one Bernoulli(`flip_prob`)
    /// draw per opportunity, poisoning the data store and recording a
    /// [`FlipEvent`] (logical coordinates) per flip.
    fn sample_flips(&mut self, b: usize, now: Cycle, disturbances: Vec<(u32, Disturbance)>) -> u32 {
        let profile = self.config.disturbance;
        let row_bits = self.config.geometry.row_bytes() * 8;
        let mut flips_generated = 0;
        for (aggressor, d) in disturbances {
            for _ in 0..d.opportunities {
                if self.rng.chance(profile.flip_prob) {
                    let bit = self.rng.below(row_bits);
                    self.data.flip_bit((b, d.victim_row), bit);
                    self.stats.flips += 1;
                    flips_generated += 1;
                    self.flips.push(FlipEvent {
                        time: now,
                        flat_bank: b,
                        victim_row: self.remaps[b].to_logical(d.victim_row),
                        aggressor_row: self.remaps[b].to_logical(aggressor),
                        bit,
                        victim_domain: None,
                        aggressor_domain: None,
                    });
                }
            }
        }
        flips_generated
    }

    /// [`DramModule::sample_flips`] specialized for one ACT's
    /// disturbances (a single internal `aggressor` row): identical RNG
    /// draw order, no intermediate pair vector.
    fn sample_flips_of(
        &mut self,
        b: usize,
        now: Cycle,
        aggressor: u32,
        disturbances: &[Disturbance],
    ) -> u32 {
        let profile = self.config.disturbance;
        let row_bits = self.config.geometry.row_bytes() * 8;
        let mut flips_generated = 0;
        for d in disturbances {
            for _ in 0..d.opportunities {
                if self.rng.chance(profile.flip_prob) {
                    let bit = self.rng.below(row_bits);
                    self.data.flip_bit((b, d.victim_row), bit);
                    self.stats.flips += 1;
                    flips_generated += 1;
                    self.flips.push(FlipEvent {
                        time: now,
                        flat_bank: b,
                        victim_row: self.remaps[b].to_logical(d.victim_row),
                        aggressor_row: self.remaps[b].to_logical(aggressor),
                        bit,
                        victim_domain: None,
                        aggressor_domain: None,
                    });
                }
            }
        }
        flips_generated
    }

    /// Settles one bank's deferred disturbance (batched mode): flushes
    /// its pending ACT log and samples flips for the result. No-op in
    /// the default per-ACT mode.
    fn settle_bank(&mut self, b: usize, now: Cycle) {
        if !self.config.batched_pressure {
            return;
        }
        self.banks[b].flush_disturbances(now);
        let flushed = self.banks[b].take_flushed();
        if !flushed.is_empty() {
            self.sample_flips(b, now, flushed);
        }
    }

    /// Settles deferred disturbance in every bank (batched mode): all
    /// pending aggressor runs are applied and their flips sampled as
    /// of `now`. Call before inspecting white-box state
    /// ([`DramModule::row_pressure`], [`DramModule::drain_flips`],
    /// data reads) when `batched_pressure` is on; a no-op otherwise.
    pub fn sync_disturbances(&mut self, now: Cycle) {
        for b in 0..self.banks.len() {
            self.settle_bank(b, now);
        }
    }

    /// One-probe scheduler snapshot of a bank: the open row plus the
    /// earliest legal cycle per command class, exactly as
    /// [`DramModule::earliest`] would report them. The controller's
    /// fast path takes one snapshot per bank per scheduling scan and
    /// prices every queued request against it, instead of re-deriving
    /// the same rank/bank constraints once per request.
    pub fn bank_timing(&self, bank: &BankId) -> BankTiming {
        let b = self.flat_bank(bank);
        let r = self.rank_index(bank.channel, bank.rank);
        let t = &self.config.timing;
        let rank = &self.ranks[r];
        BankTiming {
            open_row: self
                .soa
                .open_row(b)
                .map(|internal| self.remaps[b].to_logical(internal)),
            act: self
                .soa
                .earliest_act(b)
                .max(rank.earliest_act(bank.bank_group, t)),
            act_local: self.soa.earliest_act(b).max(rank.busy_until),
            pre: self.soa.earliest_pre(b).max(rank.busy_until),
            rdwr: self.soa.earliest_rdwr(b).max(rank.busy_until),
        }
    }
}

impl Drop for DramModule {
    /// A traced device closes its trace with a [`Event::DeviceStats`]
    /// record so replay can verify the cumulative counters without a
    /// side channel. Stamped with the last traced command's issue
    /// cycle (the device has no clock of its own). No-op when
    /// untraced.
    fn drop(&mut self) {
        let Some(tracer) = self.config.tracer.clone() else {
            return;
        };
        let stats = self.stats();
        let stats_json = serde_json::to_string(&stats).expect("device stats serialize");
        tracer.emit(self.last_issue, Event::DeviceStats { stats_json });
    }
}

/// Per-bank scheduler snapshot returned by [`DramModule::bank_timing`]:
/// the earliest legal issue cycle for each command class a queued
/// request can need next, with rank-level constraints already folded
/// in. Values match [`DramModule::earliest`] for the same command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankTiming {
    /// Open row in logical coordinates, if any.
    pub open_row: Option<u32>,
    /// Earliest ACT (bank FSM + rank tRRD/tFAW/tRFC); [`Cycle::MAX`]
    /// while a row is open.
    pub act: Cycle,
    /// Earliest REF_NEIGHBORS (bank FSM + rank busy, no inter-ACT
    /// spacing); [`Cycle::MAX`] while a row is open.
    pub act_local: Cycle,
    /// Earliest PRE.
    pub pre: Cycle,
    /// Earliest RD/WR; [`Cycle::MAX`] while precharged.
    pub rdwr: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank0() -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 0,
        }
    }

    fn bank1() -> BankId {
        BankId {
            channel: 0,
            rank: 0,
            bank_group: 0,
            bank: 1,
        }
    }

    fn module(mac: u64) -> DramModule {
        DramModule::new(DramConfig::test_config(mac)).unwrap()
    }

    /// The burst entry point must be state-identical to the
    /// per-command loop it fuses: same clock, stats, flips, RNG
    /// stream position, and timing columns — with and without TRR,
    /// in both disturbance-accounting modes.
    #[test]
    fn hammer_pairs_burst_matches_per_command_loop() {
        for batched in [false, true] {
            for trr in [false, true] {
                let mut cfg = DramConfig::test_config(600);
                cfg.disturbance.blast_radius = 3;
                cfg.batched_pressure = batched;
                if trr {
                    cfg.trr = Some(TrrConfig::vendor_default());
                }
                let mut per_cmd = DramModule::new(cfg.clone()).unwrap();
                let mut burst = DramModule::new(cfg).unwrap();
                let bank = bank0();
                let act = DdrCommand::Act { bank, row: 8 };
                let pre = DdrCommand::Pre { bank };
                let mut now = Cycle(5);
                for _ in 0..500 {
                    now = per_cmd.issue_at_earliest(&act, now).unwrap().0;
                    now = per_cmd.issue_at_earliest(&pre, now).unwrap().0;
                }
                let end = burst.issue_hammer_pairs(&bank, 8, 500, Cycle(5)).unwrap();
                assert_eq!(end, now, "batched={batched} trr={trr}");
                per_cmd.sync_disturbances(now);
                burst.sync_disturbances(end);
                assert_eq!(
                    per_cmd.stats(),
                    burst.stats(),
                    "batched={batched} trr={trr}"
                );
                assert_eq!(per_cmd.bank_timing(&bank), burst.bank_timing(&bank));
                assert_eq!(per_cmd.drain_flips(), burst.drain_flips());
                // The next ACT lands on the same cycle on both — the
                // written-back columns and rank window agree.
                assert_eq!(per_cmd.earliest(&act), burst.earliest(&act));
            }
        }
    }

    #[test]
    fn hammer_pairs_rejects_open_bank_and_bad_row() {
        let mut m = module(1_000_000);
        let g = m.config().geometry;
        assert!(matches!(
            m.issue_hammer_pairs(&bank0(), g.rows_per_bank(), 1, Cycle::ZERO),
            Err(Error::Protocol(_))
        ));
        let act = DdrCommand::Act {
            bank: bank0(),
            row: 1,
        };
        m.issue(&act, Cycle::ZERO).unwrap();
        assert!(matches!(
            m.issue_hammer_pairs(&bank0(), 1, 1, Cycle::ZERO),
            Err(Error::Timing(_))
        ));
    }

    /// Open/close a row repeatedly, respecting timing.
    fn hammer(m: &mut DramModule, bank: BankId, row: u32, times: usize) -> (Cycle, u32) {
        let mut now = Cycle::ZERO;
        let mut flips = 0;
        for _ in 0..times {
            let act = DdrCommand::Act { bank, row };
            now = now.max(m.earliest(&act));
            flips += m.issue(&act, now).unwrap().flips_generated;
            let pre = DdrCommand::Pre { bank };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
        }
        (now, flips)
    }

    #[test]
    fn act_rd_pre_sequence_works() {
        let mut m = module(1_000_000);
        let act = DdrCommand::Act {
            bank: bank0(),
            row: 3,
        };
        m.issue(&act, Cycle::ZERO).unwrap();
        let rd = DdrCommand::Rd {
            bank: bank0(),
            col: 2,
            auto_pre: false,
        };
        let t = m.earliest(&rd);
        let out = m.issue(&rd, t).unwrap();
        assert!(out.done > t);
        assert_eq!(m.open_row(&bank0()), Some(3));
        let pre = DdrCommand::Pre { bank: bank0() };
        m.issue(&pre, m.earliest(&pre)).unwrap();
        assert_eq!(m.open_row(&bank0()), None);
        let s = m.stats();
        assert_eq!((s.acts, s.rds, s.pres), (1, 1, 1));
    }

    #[test]
    fn timing_violation_rejected() {
        let mut m = module(1_000_000);
        m.issue(
            &DdrCommand::Act {
                bank: bank0(),
                row: 0,
            },
            Cycle::ZERO,
        )
        .unwrap();
        let rd = DdrCommand::Rd {
            bank: bank0(),
            col: 0,
            auto_pre: false,
        };
        assert!(matches!(m.issue(&rd, Cycle(1)), Err(Error::Timing(_))));
    }

    #[test]
    fn trrd_separates_acts_across_banks() {
        let m0 = module(1_000_000);
        let t = m0.config().timing;
        let mut m = m0;
        m.issue(
            &DdrCommand::Act {
                bank: bank0(),
                row: 0,
            },
            Cycle::ZERO,
        )
        .unwrap();
        let act1 = DdrCommand::Act {
            bank: bank1(),
            row: 0,
        };
        // Same bank group: tRRD_L applies.
        assert_eq!(m.earliest(&act1), Cycle(t.t_rrd_l));
        assert!(matches!(
            m.issue(&act1, Cycle(t.t_rrd_l - 1)),
            Err(Error::Timing(_))
        ));
        m.issue(&act1, Cycle(t.t_rrd_l)).unwrap();
    }

    #[test]
    fn faw_limits_act_bursts() {
        // Give the geometry more banks so 5 ACTs can target distinct banks.
        let mut cfg = DramConfig::test_config(1_000_000);
        cfg.geometry.banks_per_group = 8;
        let t = cfg.timing;
        let mut m = DramModule::new(cfg).unwrap();
        let mut now = Cycle::ZERO;
        let mut acts = Vec::new();
        for i in 0..5u32 {
            let bank = BankId {
                channel: 0,
                rank: 0,
                bank_group: 0,
                bank: i,
            };
            let act = DdrCommand::Act { bank, row: 0 };
            now = now.max(m.earliest(&act));
            m.issue(&act, now).unwrap();
            acts.push(now);
        }
        // The 5th ACT must wait for the tFAW window of the first.
        assert!(acts[4] >= acts[0] + t.t_faw, "tFAW not enforced: {acts:?}");
    }

    #[test]
    fn ref_requires_precharged_banks_and_occupies_rank() {
        let mut m = module(1_000_000);
        let t = m.config().timing;
        m.issue(
            &DdrCommand::Act {
                bank: bank0(),
                row: 0,
            },
            Cycle::ZERO,
        )
        .unwrap();
        let rf = DdrCommand::Ref {
            channel: 0,
            rank: 0,
        };
        assert_eq!(m.earliest(&rf), Cycle::MAX, "REF with open row illegal");
        let pre = DdrCommand::Pre { bank: bank0() };
        let pt = m.earliest(&pre);
        m.issue(&pre, pt).unwrap();
        let rt = m.earliest(&rf).max(pt);
        let out = m.issue(&rf, rt).unwrap();
        assert_eq!(out.done, rt + t.t_rfc);
        // Bank busy during tRFC.
        let act = DdrCommand::Act {
            bank: bank0(),
            row: 1,
        };
        assert!(m.earliest(&act) >= out.done);
    }

    #[test]
    fn hammering_generates_flips_and_neighbors_get_hit() {
        let mut m = module(10);
        let (_, flips) = hammer(&mut m, bank0(), 8, 40);
        assert!(flips > 0, "MAC 10 x 40 ACTs must flip");
        let events = m.drain_flips();
        assert_eq!(events.len() as u64, m.stats().flips);
        for e in &events {
            assert_eq!(e.aggressor_row, 8);
            let d = (e.victim_row as i64 - 8).unsigned_abs() as u32;
            assert!(d >= 1 && d <= m.config().disturbance.blast_radius);
        }
        // Draining empties the queue.
        assert!(m.drain_flips().is_empty());
    }

    #[test]
    fn refresh_clears_pressure_and_prevents_flips() {
        let mut m = module(30);
        // Hammer row 8 for 20 ACTs: below MAC, no flips.
        let (mut now, flips) = hammer(&mut m, bank0(), 8, 20);
        assert_eq!(flips, 0);
        assert!(m.row_pressure(&bank0(), 7) > 0.0);
        // Refresh the whole bank by cycling REF through all groups.
        let groups = m.config().geometry.rows_per_bank() / m.rows_per_refresh_group();
        for _ in 0..groups {
            let rf = DdrCommand::Ref {
                channel: 0,
                rank: 0,
            };
            now = now.max(m.earliest(&rf));
            now = m.issue(&rf, now).unwrap().done;
        }
        assert_eq!(
            m.row_pressure(&bank0(), 7),
            0.0,
            "REF cycle must clear pressure"
        );
        // Another 20 ACTs still below MAC: still no flips.
        let mut flips2 = 0;
        for _ in 0..20 {
            let act = DdrCommand::Act {
                bank: bank0(),
                row: 8,
            };
            now = now.max(m.earliest(&act));
            flips2 += m.issue(&act, now).unwrap().flips_generated;
            let pre = DdrCommand::Pre { bank: bank0() };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
        }
        assert_eq!(flips2, 0, "refresh must reset the hammer budget");
    }

    #[test]
    fn ref_neighbors_protects_victims() {
        let mut m = module(30);
        hammer(&mut m, bank0(), 8, 25);
        let refn = DdrCommand::RefNeighbors {
            bank: bank0(),
            row: 8,
            radius: 2,
        };
        let now = m.earliest(&refn);
        assert!(now < Cycle::MAX);
        m.issue(&refn, now).unwrap();
        assert_eq!(m.row_pressure(&bank0(), 7), 0.0);
        assert_eq!(m.row_pressure(&bank0(), 9), 0.0);
        assert_eq!(m.row_pressure(&bank0(), 10), 0.0);
        assert!(m.stats().ref_neighbor_rows >= 4);
    }

    #[test]
    fn trr_defends_single_aggressor_but_not_many_sided() {
        let trr = TrrConfig {
            table_size: 2,
            kind: crate::trr::TrrSamplerKind::MisraGries,
            targets_per_ref: 1,
            radius: 2,
            min_count: 1,
        };

        // Scenario A: one aggressor, REFs interleaved: TRR keeps up.
        let mut cfg = DramConfig::test_config(25);
        cfg.trr = Some(trr);
        let mut m = DramModule::new(cfg).unwrap();
        let mut now = Cycle::ZERO;
        let mut flips_single = 0;
        for i in 0..60 {
            let act = DdrCommand::Act {
                bank: bank0(),
                row: 8,
            };
            now = now.max(m.earliest(&act));
            flips_single += m.issue(&act, now).unwrap().flips_generated;
            let pre = DdrCommand::Pre { bank: bank0() };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
            if i % 10 == 9 {
                let rf = DdrCommand::Ref {
                    channel: 0,
                    rank: 0,
                };
                now = now.max(m.earliest(&rf));
                now = m.issue(&rf, now).unwrap().done;
            }
        }
        assert_eq!(flips_single, 0, "TRR must stop a single-aggressor hammer");

        // Scenario B: many-sided (6 aggressors > table 2): TRR loses.
        let mut cfg = DramConfig::test_config(25);
        cfg.trr = Some(trr);
        let mut m = DramModule::new(cfg).unwrap();
        let mut now = Cycle::ZERO;
        let mut flips_many = 0;
        let aggressors = [2u32, 5, 8, 11, 14, 1];
        for i in 0..60 {
            for &row in &aggressors {
                let act = DdrCommand::Act { bank: bank0(), row };
                now = now.max(m.earliest(&act));
                flips_many += m.issue(&act, now).unwrap().flips_generated;
                let pre = DdrCommand::Pre { bank: bank0() };
                now = now.max(m.earliest(&pre));
                m.issue(&pre, now).unwrap();
            }
            if i % 10 == 9 {
                let rf = DdrCommand::Ref {
                    channel: 0,
                    rank: 0,
                };
                now = now.max(m.earliest(&rf));
                now = m.issue(&rf, now).unwrap().done;
            }
        }
        assert!(flips_many > 0, "many-sided hammer must bypass small TRR");
    }

    #[test]
    fn data_write_read_and_poison() {
        let mut m = module(10);
        let data = vec![0x5A; 64];
        m.write_line(&bank0(), 7, 1, &data);
        let (read, poisoned) = m.read_line(&bank0(), 7, 1);
        assert_eq!(read, data);
        assert!(!poisoned);
        hammer(&mut m, bank0(), 8, 40);
        assert!(m.stats().flips > 0);
        // Some neighbor row got poisoned; row 7 is within radius 2 of 8.
        let any_poisoned = (5..=10).any(|r| m.row_is_poisoned(&bank0(), r));
        assert!(any_poisoned);
    }

    #[test]
    fn remapped_rows_report_logical_coordinates() {
        let mut cfg = DramConfig::test_config(8);
        cfg.remap = RemapConfig {
            remap_fraction: 0.5,
            within_subarray: true,
        };
        cfg.geometry = Geometry::medium();
        let mut m = DramModule::new(cfg).unwrap();
        let remapped = m.remapped_logical_rows(&bank0());
        assert!(!remapped.is_empty(), "expected some remapped rows");
        // Hammer a remapped logical row; flips must be reported against
        // logical victims whose *internal* rows neighbor the internal
        // aggressor.
        let agg = remapped[0];
        hammer(&mut m, bank0(), agg, 60);
        let events = m.drain_flips();
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.aggressor_row, agg);
            assert!(e.victim_row < m.config().geometry.rows_per_bank());
        }
    }

    #[test]
    fn retention_check_fires_without_refresh() {
        let mut m = module(1_000_000);
        let t_refw = m.config().timing.t_refw;
        assert!(!m.check_retention(&bank0(), 3, Cycle(t_refw / 2), 1.0));
        assert!(m.check_retention(&bank0(), 3, Cycle(t_refw * 2), 1.0));
        assert_eq!(m.stats().retention_decays, 1);
    }

    #[test]
    fn refresh_groups_cycle_through_all_rows() {
        let mut m = module(1_000_000);
        let g = m.config().geometry;
        let groups = g.rows_per_bank() / m.rows_per_refresh_group();
        // Pressure a row, then check exactly one full REF cycle clears it.
        hammer(&mut m, bank0(), 8, 5);
        assert!(m.row_pressure(&bank0(), 9) > 0.0);
        let mut now = Cycle(100_000);
        let mut cleared_at_ref: Option<u32> = None;
        for i in 0..groups {
            let rf = DdrCommand::Ref {
                channel: 0,
                rank: 0,
            };
            now = now.max(m.earliest(&rf));
            now = m.issue(&rf, now).unwrap().done;
            if cleared_at_ref.is_none() && m.row_pressure(&bank0(), 9) == 0.0 {
                cleared_at_ref = Some(i);
            }
        }
        assert!(cleared_at_ref.is_some(), "full REF cycle must cover row 9");
        assert_eq!(m.stats().refs as u32, groups);
    }

    #[test]
    fn inert_fault_plan_is_byte_identical_to_none() {
        let mut plain = module(10);
        let mut cfg = DramConfig::test_config(10);
        cfg.faults = Some(FaultPlan {
            seed: 12345,
            ..FaultPlan::default()
        });
        let mut faulted = DramModule::new(cfg).unwrap();
        let (_, f_plain) = hammer(&mut plain, bank0(), 8, 40);
        let (_, f_faulted) = hammer(&mut faulted, bank0(), 8, 40);
        assert_eq!(f_plain, f_faulted);
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(plain.drain_flips(), faulted.drain_flips());
        assert_eq!(faulted.fault_injections(), 0);
    }

    #[test]
    fn tracer_observes_without_perturbing_the_device() {
        let mut plain = module(10);
        let mut cfg = DramConfig::test_config(10);
        let tracer = Tracer::buffer();
        cfg.tracer = Some(tracer.clone());
        let mut traced = DramModule::new(cfg).unwrap();
        let (_, f_plain) = hammer(&mut plain, bank0(), 8, 40);
        let (_, f_traced) = hammer(&mut traced, bank0(), 8, 40);
        assert_eq!(f_plain, f_traced);
        assert_eq!(plain.stats(), traced.stats());
        let flips = traced.drain_flips();
        assert_eq!(plain.drain_flips(), flips);
        drop(traced);
        let records = tracer.take_records();
        assert!(matches!(records[0].event, Event::DeviceReset { .. }));
        assert!(matches!(
            records.last().unwrap().event,
            Event::DeviceStats { .. }
        ));
        let commands = records
            .iter()
            .filter(|r| matches!(r.event, Event::Command { .. }))
            .count();
        let traced_flips = records
            .iter()
            .filter(|r| matches!(r.event, Event::Flip { .. }))
            .count();
        assert!(commands > 0, "hammer issues commands");
        assert_eq!(traced_flips, flips.len());
    }

    #[test]
    fn dropped_ref_leaves_pressure_in_place() {
        let mut cfg = DramConfig::test_config(30);
        cfg.faults = Some(FaultPlan {
            seed: 1,
            dropped_ref: 1.0,
            ..FaultPlan::default()
        });
        let mut m = DramModule::new(cfg).unwrap();
        let (mut now, _) = hammer(&mut m, bank0(), 8, 20);
        assert!(m.row_pressure(&bank0(), 7) > 0.0);
        let groups = m.config().geometry.rows_per_bank() / m.rows_per_refresh_group();
        for _ in 0..groups {
            let rf = DdrCommand::Ref {
                channel: 0,
                rank: 0,
            };
            now = now.max(m.earliest(&rf));
            now = m.issue(&rf, now).unwrap().done;
        }
        assert!(
            m.row_pressure(&bank0(), 7) > 0.0,
            "dropped REFs must not restore rows"
        );
        assert_eq!(m.stats().refs as u32, groups, "timing side still counted");
        assert!(m.fault_injections() >= u64::from(groups));
    }

    #[test]
    fn ghost_ref_skips_cursor_groups() {
        let mut cfg = DramConfig::test_config(1_000_000);
        cfg.faults = Some(FaultPlan {
            seed: 2,
            ghost_ref: 1.0,
            ..FaultPlan::default()
        });
        let mut m = DramModule::new(cfg).unwrap();
        hammer(&mut m, bank0(), 8, 5);
        assert!(m.row_pressure(&bank0(), 9) > 0.0);
        // With every REF ghosting, the cursor advances two groups per
        // command: a full nominal REF cycle covers only half the rows.
        let groups = m.config().geometry.rows_per_bank() / m.rows_per_refresh_group();
        let mut now = Cycle(100_000);
        for _ in 0..groups {
            let rf = DdrCommand::Ref {
                channel: 0,
                rank: 0,
            };
            now = now.max(m.earliest(&rf));
            now = m.issue(&rf, now).unwrap().done;
        }
        assert_eq!(m.fault_injections(), u64::from(groups));
        // Only even-indexed groups were restored; if groups is even the
        // odd half is starved forever, otherwise coverage needs two
        // nominal cycles instead of one.
        if groups.is_multiple_of(2) {
            let g9 = 9 / m.rows_per_refresh_group();
            if !g9.is_multiple_of(2) {
                assert!(m.row_pressure(&bank0(), 9) > 0.0);
            }
        }
    }

    #[test]
    fn trr_sampler_miss_blinds_trr() {
        // Scenario A of `trr_defends_single_aggressor...`, but with a
        // sampler that misses every ACT: TRR never sees the aggressor.
        let trr = TrrConfig {
            table_size: 2,
            kind: crate::trr::TrrSamplerKind::MisraGries,
            targets_per_ref: 1,
            radius: 2,
            min_count: 1,
        };
        let mut cfg = DramConfig::test_config(25);
        cfg.trr = Some(trr);
        cfg.faults = Some(FaultPlan {
            seed: 3,
            trr_miss: 1.0,
            ..FaultPlan::default()
        });
        let mut m = DramModule::new(cfg).unwrap();
        let mut now = Cycle::ZERO;
        let mut flips = 0;
        for i in 0..60 {
            let act = DdrCommand::Act {
                bank: bank0(),
                row: 8,
            };
            now = now.max(m.earliest(&act));
            flips += m.issue(&act, now).unwrap().flips_generated;
            let pre = DdrCommand::Pre { bank: bank0() };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
            if i % 10 == 9 {
                let rf = DdrCommand::Ref {
                    channel: 0,
                    rank: 0,
                };
                now = now.max(m.earliest(&rf));
                now = m.issue(&rf, now).unwrap().done;
            }
        }
        assert!(flips > 0, "a blind sampler must let the hammer through");
        assert_eq!(m.stats().trr_refresh_rows, 0);
    }

    #[test]
    fn disturb_saturation_caps_act_counter() {
        let mut cfg = DramConfig::test_config(1_000_000);
        cfg.faults = Some(FaultPlan {
            seed: 4,
            disturb_saturation: 5,
            ..FaultPlan::default()
        });
        let mut m = DramModule::new(cfg).unwrap();
        hammer(&mut m, bank0(), 8, 20);
        assert_eq!(m.row_acts_since_refresh(&bank0(), 8), 5);
        assert_eq!(m.fault_injections(), 15);
        assert_eq!(m.stats().fault_injections, 15);
    }

    #[test]
    fn fault_decisions_are_reproducible() {
        let mk = || {
            let mut cfg = DramConfig::test_config(10);
            cfg.faults = Some(FaultPlan {
                seed: 777,
                dropped_ref: 0.5,
                ghost_ref: 0.25,
                ..FaultPlan::default()
            });
            DramModule::new(cfg).unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        let drive = |m: &mut DramModule| {
            let mut now = Cycle::ZERO;
            let mut flips = 0;
            for i in 0..50 {
                let act = DdrCommand::Act {
                    bank: bank0(),
                    row: 8,
                };
                now = now.max(m.earliest(&act));
                flips += m.issue(&act, now).unwrap().flips_generated;
                let pre = DdrCommand::Pre { bank: bank0() };
                now = now.max(m.earliest(&pre));
                m.issue(&pre, now).unwrap();
                if i % 5 == 4 {
                    let rf = DdrCommand::Ref {
                        channel: 0,
                        rank: 0,
                    };
                    now = now.max(m.earliest(&rf));
                    now = m.issue(&rf, now).unwrap().done;
                }
            }
            flips
        };
        assert_eq!(drive(&mut a), drive(&mut b));
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.fault_injections(), b.fault_injections());
        assert_eq!(a.drain_flips(), b.drain_flips());
    }

    #[test]
    fn out_of_range_commands_rejected() {
        let mut m = module(100);
        let bad_act = DdrCommand::Act {
            bank: bank0(),
            row: 9999,
        };
        assert!(matches!(
            m.issue(&bad_act, Cycle::ZERO),
            Err(Error::Protocol(_))
        ));
        m.issue(
            &DdrCommand::Act {
                bank: bank0(),
                row: 0,
            },
            Cycle::ZERO,
        )
        .unwrap();
        let bad_rd = DdrCommand::Rd {
            bank: bank0(),
            col: 999,
            auto_pre: false,
        };
        let t = m.earliest(&bad_rd);
        assert!(matches!(m.issue(&bad_rd, t), Err(Error::Protocol(_))));
    }
}
