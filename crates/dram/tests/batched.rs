//! Differential tests for batched disturbance accounting.
//!
//! `DramConfig::batched_pressure` defers the per-ACT victim walk to
//! flush boundaries. For dyadic distance decays (0.5, 1.0) a run's
//! aggregated `count x w(d)` pressure is bit-exact with the per-ACT
//! sum, so after a sync both modes must agree on every row's pressure,
//! activation counters, and — with `flip_prob = 1.0`, where every
//! opportunity flips — the per-victim flip counts. Only flip *timing*
//! and bit positions (RNG draw order) may differ, which is why the
//! mode is opt-in and off everywhere byte-identical output matters.

use hammertime_common::geometry::BankId;
use hammertime_common::{Cycle, DetRng, Geometry};
use hammertime_dram::{DdrCommand, DramConfig, DramModule};
use proptest::prelude::*;
use std::collections::HashMap;

fn bank0() -> BankId {
    BankId {
        channel: 0,
        rank: 0,
        bank_group: 0,
        bank: 0,
    }
}

fn config(mac: u64, decay: f64, batched: bool) -> DramConfig {
    let mut cfg = DramConfig::test_config(mac);
    cfg.disturbance.distance_decay = decay;
    cfg.batched_pressure = batched;
    cfg
}

/// Per-row `(pressure, acts_since_refresh, poisoned)` plus flips
/// grouped per victim row and the total flip count.
type DriveOutcome = (Vec<(f64, u32, u64)>, HashMap<u32, usize>, u64);

/// Replays `ops` (ACT row / PRE / REF picks) through one module,
/// returning final white-box state and flips grouped per victim row.
fn drive(mut m: DramModule, ops: &[u8]) -> DriveOutcome {
    let bank = bank0();
    let mut now = Cycle::ZERO;
    let mut rng = DetRng::new(9);
    for &op in ops {
        let cmd = match op % 8 {
            7 => DdrCommand::Ref {
                channel: 0,
                rank: 0,
            },
            _ if m.open_row(&bank).is_some() => DdrCommand::Pre { bank },
            _ => DdrCommand::Act {
                bank,
                row: (rng.below(16)) as u32,
            },
        };
        now = now.max(m.earliest(&cmd));
        if now == Cycle::MAX {
            // REF with a row open: precharge instead.
            let pre = DdrCommand::Pre { bank };
            now = m.earliest(&pre);
            m.issue(&pre, now).unwrap();
            continue;
        }
        now = m.issue(&cmd, now).unwrap().done.max(now);
    }
    m.sync_disturbances(now);
    let rows: Vec<(f64, u32, u64)> = (0..m.config().geometry.rows_per_bank())
        .map(|r| {
            (
                m.row_pressure(&bank, r),
                m.row_acts_since_refresh(&bank, r),
                u64::from(m.row_is_poisoned(&bank, r)),
            )
        })
        .collect();
    let mut per_victim: HashMap<u32, usize> = HashMap::new();
    for f in m.drain_flips() {
        *per_victim.entry(f.victim_row).or_default() += 1;
    }
    let total = m.stats().flips;
    (rows, per_victim, total)
}

proptest! {
    /// For dyadic decays, batched and per-ACT accounting agree exactly
    /// on pressure, activation counters, poisoned rows, and per-victim
    /// flip counts after a sync.
    #[test]
    fn batched_pressure_matches_per_act(
        ops in prop::collection::vec(any::<u8>(), 1..120),
        mac in 4u64..40,
        dyadic in any::<bool>(),
    ) {
        let decay = if dyadic { 0.5 } else { 1.0 };
        let exact = drive(DramModule::new(config(mac, decay, false)).unwrap(), &ops);
        let batched = drive(DramModule::new(config(mac, decay, true)).unwrap(), &ops);
        // Pressure and counters: bit-exact.
        for (i, (a, b)) in exact.0.iter().zip(batched.0.iter()).enumerate() {
            prop_assert_eq!(a.0.to_bits(), b.0.to_bits(), "row {} pressure differs", i);
            prop_assert_eq!(a.1, b.1, "row {} acts_since_refresh differs", i);
            prop_assert_eq!(a.2, b.2, "row {} poison differs", i);
        }
        // flip_prob is 1.0 in test_config: every opportunity flips, so
        // per-victim counts must match even though bit positions and
        // timestamps may not.
        prop_assert_eq!(&exact.1, &batched.1);
        prop_assert_eq!(exact.2, batched.2);
    }
}

/// A single-row hammer burst in batched mode costs O(1) log entries
/// and still produces the same flip count as per-ACT accounting.
#[test]
fn batched_hammer_burst_flips_identically() {
    let hammer = |batched: bool| {
        let mut m = DramModule::new(config(20, 0.5, batched)).unwrap();
        let bank = bank0();
        let mut now = Cycle::ZERO;
        for _ in 0..200 {
            let act = DdrCommand::Act { bank, row: 8 };
            now = now.max(m.earliest(&act));
            m.issue(&act, now).unwrap();
            let pre = DdrCommand::Pre { bank };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
        }
        m.sync_disturbances(now);
        m.stats().flips
    };
    let exact = hammer(false);
    let fast = hammer(true);
    assert!(exact > 0, "200 ACTs at MAC 20 must flip");
    assert_eq!(exact, fast);
}

/// Batched mode with a REF-heavy schedule: flushes at refresh
/// boundaries keep victim accounting aligned with the per-ACT path.
#[test]
fn batched_mode_respects_refresh_boundaries() {
    let run = |batched: bool| {
        let mut cfg = config(15, 0.5, batched);
        cfg.geometry = Geometry::small_test();
        let mut m = DramModule::new(cfg).unwrap();
        let bank = bank0();
        let mut now = Cycle::ZERO;
        for burst in 0..12 {
            for _ in 0..10 {
                let act = DdrCommand::Act { bank, row: 4 };
                now = now.max(m.earliest(&act));
                m.issue(&act, now).unwrap();
                let pre = DdrCommand::Pre { bank };
                now = now.max(m.earliest(&pre));
                m.issue(&pre, now).unwrap();
            }
            if burst % 3 == 2 {
                let rf = DdrCommand::Ref {
                    channel: 0,
                    rank: 0,
                };
                now = now.max(m.earliest(&rf));
                now = m.issue(&rf, now).unwrap().done;
            }
        }
        m.sync_disturbances(now);
        (m.row_pressure(&bank, 3).to_bits(), m.stats().flips)
    };
    assert_eq!(run(false), run(true));
}
