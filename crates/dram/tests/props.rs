//! Property tests for the DRAM device model.

use hammertime_common::geometry::BankId;
use hammertime_common::{Cycle, DetRng, Geometry};
use hammertime_dram::bank::{Bank, TimingSoA};
use hammertime_dram::disturb::{DisturbanceProfile, VictimState};
use hammertime_dram::module::{DramConfig, DramModule};
use hammertime_dram::remap::{RemapConfig, RowRemap};
use hammertime_dram::{DdrCommand, TimingParams};
use proptest::prelude::*;

fn profile(mac: u64) -> DisturbanceProfile {
    DisturbanceProfile {
        mac,
        blast_radius: 2,
        distance_decay: 0.5,
        flip_prob: 1.0,
        overshoot_step: 0.05,
    }
}

proptest! {
    /// Pressure accounting is independent of how ACT pressure is
    /// batched: any partition of the same total yields the same flip
    /// opportunities.
    #[test]
    fn pressure_batching_invariant(
        mac in 1u64..1_000,
        chunks in prop::collection::vec(1u32..50, 1..40),
    ) {
        let p = profile(mac);
        let total: u32 = chunks.iter().sum();
        let mut incremental = VictimState::default();
        let mut opportunities = 0;
        for c in &chunks {
            opportunities += incremental.add_pressure(*c as f64, &p);
        }
        let mut batched = VictimState::default();
        let batch_opps = batched.add_pressure(total as f64, &p);
        prop_assert_eq!(opportunities, batch_opps);
        prop_assert!((incremental.pressure - batched.pressure).abs() < 1e-9);
    }

    /// Refresh always zeroes pressure and restarts the budget.
    #[test]
    fn refresh_resets_budget(mac in 1u64..500, pre in 0u32..2_000, t in any::<u64>()) {
        let p = profile(mac);
        let mut v = VictimState::default();
        v.add_pressure(pre as f64, &p);
        v.refresh(Cycle(t));
        prop_assert_eq!(v.pressure, 0.0);
        prop_assert_eq!(v.flip_opportunities, 0);
        // Below-MAC pressure after refresh creates no opportunities.
        prop_assert_eq!(v.add_pressure(mac as f64, &p), 0);
    }

    /// Row remapping is always an involutive permutation that respects
    /// subarray boundaries when asked to.
    #[test]
    fn remap_is_involutive_permutation(
        seed in any::<u64>(),
        fraction in 0.0f64..1.0,
        sa_bits in 3u32..6,
    ) {
        let rows = 1u32 << (sa_bits + 2);
        let rows_per_subarray = 1 << sa_bits;
        let mut rng = DetRng::new(seed);
        let remap = RowRemap::new(
            rows,
            rows_per_subarray,
            RemapConfig { remap_fraction: fraction, within_subarray: true },
            &mut rng,
        );
        let mut seen = std::collections::HashSet::new();
        for r in 0..rows {
            let internal = remap.to_internal(r);
            prop_assert!(seen.insert(internal), "not a permutation");
            prop_assert_eq!(remap.to_logical(internal), r, "not involutive");
            prop_assert_eq!(internal / rows_per_subarray, r / rows_per_subarray);
        }
    }

    /// The bank FSM never reports a legal time that then fails: for an
    /// arbitrary command schedule, issuing at `earliest()` always
    /// succeeds, and the FSM state stays consistent.
    #[test]
    fn bank_earliest_is_always_legal(ops in prop::collection::vec(0u8..4, 1..80), seed in any::<u64>()) {
        let t = TimingParams::tiny_test();
        let mut soa = TimingSoA::new(1);
        let mut bank = Bank::new(64, 16, profile(1_000_000), false);
        let mut rng = DetRng::new(seed);
        let mut now = Cycle::ZERO;
        for op in ops {
            match op {
                0 => {
                    let at = soa.earliest_act(0);
                    if at != Cycle::MAX {
                        now = now.max(at);
                        let row = rng.below(64) as u32;
                        prop_assert!(soa.act(0, row, now, &t).is_ok());
                        bank.record_act(row, now);
                    }
                }
                1 => {
                    let at = soa.earliest_pre(0);
                    if at != Cycle::MAX {
                        now = now.max(at);
                        prop_assert!(soa.pre(0, now, &t).is_ok());
                    }
                }
                2 => {
                    let at = soa.earliest_rdwr(0);
                    if at != Cycle::MAX {
                        now = now.max(at);
                        prop_assert!(soa.rd(0, now, rng.chance(0.3), &t).is_ok());
                    }
                }
                _ => {
                    let at = soa.earliest_rdwr(0);
                    if at != Cycle::MAX {
                        now = now.max(at);
                        prop_assert!(soa.wr(0, now, rng.chance(0.3), &t).is_ok());
                    }
                }
            }
        }
    }

    /// Module-level: a random demand schedule driven through
    /// `earliest()` never produces an error, and command counts add up.
    #[test]
    fn module_schedule_legality(ops in prop::collection::vec(0u8..3, 1..60), seed in any::<u64>()) {
        let mut cfg = DramConfig::test_config(1_000_000);
        cfg.geometry = Geometry::small_test();
        let mut m = DramModule::new(cfg).unwrap();
        let mut rng = DetRng::new(seed);
        let mut now = Cycle::ZERO;
        let bank = BankId { channel: 0, rank: 0, bank_group: 0, bank: 0 };
        let mut issued = 0u64;
        for op in ops {
            let cmd = match op {
                0 => DdrCommand::Act { bank, row: rng.below(32) as u32 },
                1 => DdrCommand::Pre { bank },
                _ => DdrCommand::Rd { bank, col: rng.below(8) as u32, auto_pre: false },
            };
            let at = m.earliest(&cmd);
            if at == Cycle::MAX {
                continue; // illegal in this state; a real MC would reorder
            }
            now = now.max(at);
            prop_assert!(m.issue(&cmd, now).is_ok(), "{cmd} at {now}");
            issued += 1;
        }
        let s = m.stats();
        prop_assert!(s.acts + s.pres + s.rds <= issued + s.pres); // PRE may be no-op counted once
    }

    /// Disturbance conservation: total flip opportunities equal what
    /// the per-victim pressure accounting predicts — flips never
    /// appear without corresponding aggressor activity.
    #[test]
    fn no_flips_without_pressure(mac in 50u64..500) {
        let mut cfg = DramConfig::test_config(mac);
        cfg.geometry = Geometry::small_test();
        let mut m = DramModule::new(cfg).unwrap();
        let bank = BankId { channel: 0, rank: 0, bank_group: 0, bank: 0 };
        let mut now = Cycle::ZERO;
        // Fewer ACTs than MAC/2: no victim can cross.
        for _ in 0..(mac / 2).min(200) {
            let act = DdrCommand::Act { bank, row: 8 };
            now = now.max(m.earliest(&act));
            m.issue(&act, now).unwrap();
            let pre = DdrCommand::Pre { bank };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
        }
        prop_assert_eq!(m.stats().flips, 0);
        prop_assert!(m.drain_flips().is_empty());
    }
}
