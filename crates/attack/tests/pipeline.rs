//! Integration tests for the modular attack pipeline: the cross
//! product is stable and fully buildable, and the A1 experiment is
//! deterministic across worker counts.

use hammertime::experiments::{run_suite, silent, RunOptions};
use hammertime::machine::MachineConfig;
use hammertime::taxonomy::DefenseKind;
use hammertime_attack::{experiment, AttackRun, AttackSpec};

#[test]
fn enumeration_is_stable_sorted_and_round_trips() {
    let all = AttackSpec::all_triples();
    let names: Vec<String> = all.iter().map(AttackSpec::name).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "all_triples must come out name-sorted");
    sorted.dedup();
    assert_eq!(names.len(), sorted.len(), "no duplicate triples");
    assert_eq!(names.len(), 72, "4 allocators x 6 hammerers x 3 victims");
    for name in &names {
        let parsed = AttackSpec::parse(name).expect("every listed triple parses");
        assert_eq!(&parsed.name(), name, "parse/name round-trip");
    }
}

#[test]
fn every_triple_builds_against_an_undefended_machine() {
    for spec in AttackSpec::all_triples() {
        let run = AttackRun::new(spec, MachineConfig::fast(DefenseKind::None, 24));
        let (m, prep) = run
            .prepare()
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", spec.name()));
        assert!(prep.aggressors > 0, "{} planned no aggressors", prep.triple);
        assert!(
            m.checkpoint().is_some(),
            "{} must support checkpoint/migrate",
            prep.triple
        );
    }
}

#[test]
fn a1_quick_tables_are_byte_identical_across_jobs() {
    let render = |jobs: usize| {
        let report = run_suite(
            &experiment::registry(),
            &RunOptions::new(true).jobs(jobs),
            &silent,
        )
        .expect("A1 suite runs");
        assert!(!report.has_failures(), "A1 cells must not fail");
        report
            .tables
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(1), render(8), "A1 output must not depend on --jobs");
}
