//! The attacker's presumed-contiguous view of its allocation.
//!
//! Every [`crate::ConsecAllocator`] strategy produces a
//! [`ConsecRegion`]: rows grouped into presumed banks and ordered by a
//! presumed physical coordinate (`slot`). The hammerers consume only
//! this view — never ground truth — so an allocator whose presumption
//! is wrong (SPOILER under a permuted map, THP chunk chaining across a
//! guard stripe) degrades the attack exactly the way a real exploit
//! degrades: the aggressor set is chosen at the wrong physical
//! spacing and the flips don't land.

use hammertime_common::CacheLineAddr;

/// One row the attacker believes it owns, in its presumed coordinate
/// system.
#[derive(Debug, Clone)]
pub struct PresumedRow {
    /// Presumed bank label. Exact strategies use the true flat bank
    /// index; inference strategies use a discovered group index — the
    /// hammerers only compare labels for equality, so the distinction
    /// is invisible to them (as it is to a real attacker).
    pub group: usize,
    /// Presumed physical row coordinate within the group. Slot
    /// arithmetic is how hammerers space aggressors ("two rows
    /// apart"); whether a slot delta of 2 really is two rows is the
    /// allocator's fidelity.
    pub slot: u64,
    /// The attacker's *virtual* lines that it believes map to this
    /// row (what its workload can actually touch).
    pub lines: Vec<CacheLineAddr>,
}

/// A presumed-contiguous region: what an allocation strategy handed
/// the attacker, in the attacker's own coordinates.
#[derive(Debug, Clone)]
pub struct ConsecRegion {
    /// The strategy that produced this view.
    pub strategy: &'static str,
    /// Whether the view is ground truth (pfn oracle, hugepage) or a
    /// presumption that can be wrong (THP chaining, SPOILER order).
    pub exact: bool,
    /// Rows sorted by `(group, slot)`.
    pub rows: Vec<PresumedRow>,
}

impl ConsecRegion {
    /// Normalizes row order to `(group, slot)`; call after building.
    pub fn canonicalize(mut self) -> ConsecRegion {
        self.rows.sort_by_key(|r| (r.group, r.slot));
        self
    }

    /// Rows of the group with the most rows (ties: lowest label), in
    /// slot order — the bank a hammerer concentrates on.
    pub fn largest_group(&self) -> Vec<&PresumedRow> {
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for r in &self.rows {
            match counts.iter_mut().find(|(g, _)| *g == r.group) {
                Some((_, n)) => *n += 1,
                None => counts.push((r.group, 1)),
            }
        }
        let Some(&(best, _)) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        else {
            return Vec::new();
        };
        self.rows.iter().filter(|r| r.group == best).collect()
    }

    /// A double-sided aggressor pair from the largest group: prefers
    /// slots `(s, s+2)` whose middle slot `s+1` is *absent* from the
    /// attacker's view (presumably someone else's row — the classic
    /// sandwich), then any `(s, s+2)`, then the closest pair at
    /// distance ≥ 2, then any two rows. `None` if fewer than two rows
    /// exist anywhere.
    pub fn pick_pair(&self) -> Option<(CacheLineAddr, CacheLineAddr)> {
        let rows = self.largest_group();
        let line_at = |i: usize| rows[i].lines[0];
        let has_slot = |s: u64| rows.iter().any(|r| r.slot == s);
        // Sandwich around a presumed foreign row.
        for (i, r) in rows.iter().enumerate() {
            if has_slot(r.slot + 2) && !has_slot(r.slot + 1) {
                let j = rows.iter().position(|x| x.slot == r.slot + 2).unwrap();
                return Some((line_at(i), line_at(j)));
            }
        }
        // Any gap-2 pair, then the closest pair at distance >= 2.
        for want_exact in [true, false] {
            let mut best: Option<(usize, usize, u64)> = None;
            for i in 0..rows.len() {
                for j in i + 1..rows.len() {
                    let d = rows[j].slot - rows[i].slot;
                    if want_exact && d == 2 {
                        return Some((line_at(i), line_at(j)));
                    }
                    if !want_exact && d >= 2 && best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
            if let Some((i, j, _)) = best {
                return Some((line_at(i), line_at(j)));
            }
        }
        if rows.len() >= 2 {
            return Some((line_at(0), line_at(1)));
        }
        // Largest group has one row; fall back to any two rows at all.
        if self.rows.len() >= 2 {
            return Some((self.rows[0].lines[0], self.rows[1].lines[0]));
        }
        None
    }

    /// Up to `n` aggressors from the largest group, greedily spaced at
    /// least two slots apart (contiguous aggressors refresh each
    /// other's victims with their own ACTs, so effective many-sided
    /// patterns leave victim gaps — the TRRespass structure).
    pub fn pick_spaced(&self, n: usize) -> Vec<CacheLineAddr> {
        let rows = self.largest_group();
        let mut out: Vec<CacheLineAddr> = Vec::new();
        let mut last: Option<u64> = None;
        for r in &rows {
            if last.is_none_or(|p| r.slot >= p + 2) {
                out.push(r.lines[0]);
                last = Some(r.slot);
                if out.len() == n {
                    break;
                }
            }
        }
        if out.is_empty() && !self.rows.is_empty() {
            out.push(self.rows[0].lines[0]);
        }
        out
    }

    /// A decoy line for pacing: a row of the largest group at slot
    /// distance > `dist` from every line in `used` (so its ACTs
    /// row-conflict in the aggressors' bank without refreshing their
    /// victims). `None` when the group has no such row.
    pub fn pick_decoy(&self, used: &[CacheLineAddr], dist: u64) -> Option<CacheLineAddr> {
        let rows = self.largest_group();
        let used_slots: Vec<u64> = rows
            .iter()
            .filter(|r| r.lines.iter().any(|l| used.contains(l)))
            .map(|r| r.slot)
            .collect();
        rows.iter()
            .find(|r| used_slots.iter().all(|&s| r.slot.abs_diff(s) > dist))
            .map(|r| r.lines[0])
    }

    /// Total rows across all groups.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the region holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(group: usize, slot: u64, line: u64) -> PresumedRow {
        PresumedRow {
            group,
            slot,
            lines: vec![CacheLineAddr(line)],
        }
    }

    fn region(rows: Vec<PresumedRow>) -> ConsecRegion {
        ConsecRegion {
            strategy: "test",
            exact: true,
            rows,
        }
        .canonicalize()
    }

    #[test]
    fn pair_prefers_sandwich_with_missing_middle() {
        // Slots 0,1,2,3 present plus 5,7: the first sandwich around a
        // missing (presumed-foreign) slot is (3,5), beating the fully
        // attacker-owned (0,2).
        let r = region(vec![
            row(0, 0, 10),
            row(0, 1, 11),
            row(0, 2, 12),
            row(0, 3, 13),
            row(0, 5, 15),
            row(0, 7, 17),
        ]);
        assert_eq!(r.pick_pair(), Some((CacheLineAddr(13), CacheLineAddr(15))));
    }

    #[test]
    fn pair_falls_back_to_closest_then_any() {
        let r = region(vec![row(0, 0, 10), row(0, 1, 11)]);
        assert_eq!(r.pick_pair(), Some((CacheLineAddr(10), CacheLineAddr(11))));
        let r = region(vec![row(0, 0, 10), row(1, 9, 20)]);
        assert_eq!(r.pick_pair(), Some((CacheLineAddr(10), CacheLineAddr(20))));
        assert_eq!(region(vec![row(0, 0, 10)]).pick_pair(), None);
    }

    #[test]
    fn spaced_picks_skip_adjacent_slots() {
        let r = region((0..8).map(|s| row(0, s, 100 + s)).collect());
        let picks = r.pick_spaced(3);
        assert_eq!(
            picks,
            vec![CacheLineAddr(100), CacheLineAddr(102), CacheLineAddr(104)]
        );
    }

    #[test]
    fn decoy_is_far_from_aggressors() {
        let r = region((0..10).map(|s| row(0, s, 100 + s)).collect());
        let pair = vec![CacheLineAddr(100), CacheLineAddr(102)];
        let decoy = r.pick_decoy(&pair, 4).unwrap();
        assert_eq!(decoy, CacheLineAddr(107));
    }

    #[test]
    fn largest_group_breaks_ties_toward_lowest_label() {
        let r = region(vec![row(2, 0, 1), row(1, 0, 2)]);
        assert_eq!(r.largest_group()[0].group, 1);
    }
}
