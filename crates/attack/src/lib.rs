//! The modular attack pipeline: allocator × hammerer × victim.
//!
//! The paper's core argument is that mitigations must be judged
//! against the *space* of attacks, not a handful of canned patterns
//! (§2–3). This crate factors a Rowhammer attack into the three
//! decisions a real exploit chain makes, each behind a trait, and
//! composes any triple of them into a runnable scenario:
//!
//! - [`ConsecAllocator`] — how the attacker obtains (what it believes
//!   to be) physically adjacent rows through the model OS: one huge
//!   contiguous grab, THP-style buddy chunks, a privileged pfn-leak
//!   oracle, or SPOILER-style contiguity *inference* that only probes
//!   timing through the address map.
//! - [`Hammerer`] — the temporal pattern over the presumed-adjacent
//!   view: single/double/many-sided, seeded TRRespass-style fuzzed
//!   n-sided, decoy-paced counter evasion, or DMA.
//! - [`VictimOrchestrator`] — what "success" means beyond raw flips:
//!   any cross-domain flip, a page-table-entry PFN-field hit, or a
//!   key-material hit where only flips landing in the target buffer's
//!   error matrix count.
//!
//! A declarative [`AttackSpec`] names a triple (`"pfn/double/ptbit"`),
//! [`AttackRun`] executes it on a [`hammertime::Machine`], and the
//! [`experiment::A1`] experiment sweeps a curated cross product
//! against the defense slate. Every workload the pipeline builds
//! supports `box_clone`, so armed attacks checkpoint and migrate in
//! fleet mode like any other tenant.
//!
//! Determinism: allocators survey through deterministic surfaces
//! (page-table iteration order, pure address-map probes), and fuzzed
//! schedules draw from an explicit [`hammertime_common::DetRng`] fork
//! of the configuration seed — never from ambient machine state — so
//! pipeline output is byte-identical for any `--jobs` value.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod experiment;
pub mod hammer;
pub mod pipeline;
pub mod region;
pub mod spec;
pub mod victim;

pub use alloc::{ConsecAllocator, HugepageAlloc, PfnLeakAlloc, SpoilerAlloc, ThpBuddyAlloc};
pub use hammer::{
    DecoyPaced, DmaSided, DoubleSided, FuzzedSided, HammerPlan, Hammerer, ManySided, SingleSided,
};
pub use pipeline::{arm_on_scenario, AttackOutcome, AttackRun, ATTACKER, VICTIM};
pub use region::{ConsecRegion, PresumedRow};
pub use spec::{AllocatorKind, AttackSpec, HammererKind, VictimKind};
pub use victim::{
    FlipCountVictim, KeyMaterialVictim, PageTableBitVictim, VictimOrchestrator, VictimVerdict,
};
