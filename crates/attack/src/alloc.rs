//! Contiguity-acquisition strategies: how the attacker obtains (what
//! it believes to be) physically adjacent rows through the model OS.
//!
//! Each strategy has two halves. [`ConsecAllocator::rounds`] shapes
//! *when* the attacker allocates — one huge grab versus many small
//! chunks interleaved with the victim's allocations, which is what
//! actually controls physical adjacency to the victim under a buddy
//! allocator. [`ConsecAllocator::survey`] then builds the attacker's
//! presumed [`ConsecRegion`] view, through whichever side channel the
//! strategy models:
//!
//! | strategy | acquisition | survey surface | exact? |
//! |---|---|---|---|
//! | [`HugepageAlloc`] | one block | known map over a contiguous block | yes |
//! | [`ThpBuddyAlloc`] | buddy chunks | known map, *presumed* chunk chaining | no |
//! | [`PfnLeakAlloc`] | buddy chunks | pagemap-style pfn oracle | yes |
//! | [`SpoilerAlloc`] | buddy chunks | timing probes only | no |

use hammertime::machine::ProbeOutcome;
use hammertime::Machine;
use hammertime_common::addr::LINES_PER_PAGE;
use hammertime_common::{CacheLineAddr, DomainId, Result};

use crate::region::{ConsecRegion, PresumedRow};

/// A strategy for acquiring presumed-contiguous memory.
pub trait ConsecAllocator {
    /// Short name used in [`crate::AttackSpec`] triples.
    fn name(&self) -> &'static str;

    /// Page counts for each allocation round. The pipeline interleaves
    /// victim allocations between rounds, so many small rounds place
    /// the attacker *around* the victim (the buddy-allocator massaging
    /// real exploits rely on), while a single round lands the victim
    /// entirely after the attacker block.
    fn rounds(&self, budget_pages: u64) -> Vec<u64>;

    /// Builds the attacker's presumed view of its `pages`-page
    /// allocation in `domain`.
    ///
    /// # Errors
    ///
    /// Propagates translation failures from the machine surfaces the
    /// strategy consumes.
    fn survey(&self, m: &Machine, domain: DomainId, pages: u64) -> Result<ConsecRegion>;
}

/// Splits `budget` into `chunk`-page rounds (plus a remainder round).
fn chunked(budget: u64, chunk: u64) -> Vec<u64> {
    let chunk = chunk.max(1);
    let mut out = vec![chunk; (budget / chunk) as usize];
    if !budget.is_multiple_of(chunk) {
        out.push(budget % chunk);
    }
    out
}

/// Ground-truth survey via the machine's reverse-engineered
/// (bank, row) grouping: group = flat bank index, slot = true row.
fn exact_survey(m: &Machine, domain: DomainId, strategy: &'static str) -> ConsecRegion {
    let g = m.config().geometry;
    let rows = m
        .rows_of_domain(domain)
        .into_iter()
        .map(|(bank, row, lines)| PresumedRow {
            group: bank.flat(&g),
            slot: u64::from(row),
            lines,
        })
        .collect();
    ConsecRegion {
        strategy,
        exact: true,
        rows,
    }
    .canonicalize()
}

/// One contiguous hugepage-style grab.
///
/// The whole budget arrives in a single round, so the block really is
/// contiguous and the (known) address map gives the attacker an exact
/// view — but the victim's pages land entirely *after* the block, so
/// cross-domain adjacency only exists at the block's trailing edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct HugepageAlloc;

impl ConsecAllocator for HugepageAlloc {
    fn name(&self) -> &'static str {
        "hugepage"
    }

    fn rounds(&self, budget_pages: u64) -> Vec<u64> {
        vec![budget_pages]
    }

    fn survey(&self, m: &Machine, domain: DomainId, _pages: u64) -> Result<ConsecRegion> {
        Ok(exact_survey(m, domain, "hugepage"))
    }
}

/// THP-style buddy grouping: many small chunks, presumed chained.
///
/// Within each chunk the attacker's view is exact (a buddy chunk is
/// physically contiguous, and the address map is known). *Across*
/// chunks it presumes each chunk continues where the previous one
/// ended — true under a first-fit buddy allocator with interleaved
/// victims, wrong whenever the OS skips frames (guard rows, subarray
/// partitioning, remapping), which is precisely how those defenses
/// break this strategy.
#[derive(Debug, Clone, Copy)]
pub struct ThpBuddyAlloc {
    /// Pages per allocation round.
    pub chunk: u64,
}

impl Default for ThpBuddyAlloc {
    fn default() -> ThpBuddyAlloc {
        ThpBuddyAlloc { chunk: 2 }
    }
}

impl ConsecAllocator for ThpBuddyAlloc {
    fn name(&self) -> &'static str {
        "thp"
    }

    fn rounds(&self, budget_pages: u64) -> Vec<u64> {
        chunked(budget_pages, self.chunk)
    }

    fn survey(&self, m: &Machine, domain: DomainId, pages: u64) -> Result<ConsecRegion> {
        let g = m.config().geometry;
        let rows_per_chunk = self.chunk.max(1) * LINES_PER_PAGE / u64::from(g.columns);
        let mut rows: Vec<PresumedRow> = Vec::new();
        let mut slot_base = 0u64;
        let mut vpage = 0u64;
        while vpage < pages {
            let chunk_pages = self.chunk.max(1).min(pages - vpage);
            // Ground truth *within* the chunk, anchored at the chunk's
            // lowest row.
            let mut located: Vec<(usize, u32, CacheLineAddr)> = Vec::new();
            for p in 0..chunk_pages {
                for l in 0..LINES_PER_PAGE {
                    let vline = CacheLineAddr((vpage + p) * LINES_PER_PAGE + l);
                    let pline = m.translate(domain, vline)?;
                    let (bank, row) = m.mc().locate(pline)?;
                    located.push((bank.flat(&g), row, vline));
                }
            }
            let anchor = located.iter().map(|&(_, row, _)| row).min().unwrap_or(0);
            for (flat, row, vline) in located {
                let slot = slot_base + u64::from(row - anchor);
                match rows.iter_mut().find(|r| r.group == flat && r.slot == slot) {
                    Some(r) => r.lines.push(vline),
                    None => rows.push(PresumedRow {
                        group: flat,
                        slot,
                        lines: vec![vline],
                    }),
                }
            }
            // Presume the next chunk continues immediately after this
            // one's extent — the chaining that can be wrong.
            slot_base += rows_per_chunk.max(1);
            vpage += chunk_pages;
        }
        Ok(ConsecRegion {
            strategy: "thp",
            exact: false,
            rows,
        }
        .canonicalize())
    }
}

/// Privileged pfn-leak oracle (a `/proc/<pid>/pagemap`-style surface).
///
/// Allocates in buddy chunks like [`ThpBuddyAlloc`] — so the victim is
/// interleaved — but surveys through the OS's page-frame leak, giving
/// an exact view regardless of how the frames were scattered.
#[derive(Debug, Clone, Copy)]
pub struct PfnLeakAlloc {
    /// Pages per allocation round.
    pub chunk: u64,
}

impl Default for PfnLeakAlloc {
    fn default() -> PfnLeakAlloc {
        PfnLeakAlloc { chunk: 2 }
    }
}

impl ConsecAllocator for PfnLeakAlloc {
    fn name(&self) -> &'static str {
        "pfn"
    }

    fn rounds(&self, budget_pages: u64) -> Vec<u64> {
        chunked(budget_pages, self.chunk)
    }

    fn survey(&self, m: &Machine, domain: DomainId, _pages: u64) -> Result<ConsecRegion> {
        let g = m.config().geometry;
        let mut rows: Vec<PresumedRow> = Vec::new();
        for (vpage, frame) in m.leak_pfns(domain) {
            for l in 0..LINES_PER_PAGE {
                let pline = CacheLineAddr(frame * LINES_PER_PAGE + l);
                let (bank, row) = m.mc().locate(pline)?;
                let (group, slot) = (bank.flat(&g), u64::from(row));
                let vline = CacheLineAddr(vpage * LINES_PER_PAGE + l);
                match rows.iter_mut().find(|r| r.group == group && r.slot == slot) {
                    Some(r) => r.lines.push(vline),
                    None => rows.push(PresumedRow {
                        group,
                        slot,
                        lines: vec![vline],
                    }),
                }
            }
        }
        Ok(ConsecRegion {
            strategy: "pfn",
            exact: true,
            rows,
        }
        .canonicalize())
    }
}

/// SPOILER-style contiguity inference: timing probes only.
///
/// The survey never reads the page tables or the address map — it only
/// observes row-hit/row-conflict outcomes between pairs of its own
/// virtual lines ([`Machine::probe_pair`]), exactly what a cross-core
/// timing channel leaks. Lines that conflict share a bank (a group);
/// lines that hit share a row. Because timing cannot measure *how far
/// apart* two conflicting rows are, slots are dense discovery indices:
/// "two slots apart" may be two real rows or twenty, which is this
/// strategy's characteristic fidelity loss.
#[derive(Debug, Clone, Copy)]
pub struct SpoilerAlloc {
    /// Pages per allocation round.
    pub chunk: u64,
}

impl Default for SpoilerAlloc {
    fn default() -> SpoilerAlloc {
        SpoilerAlloc { chunk: 2 }
    }
}

impl ConsecAllocator for SpoilerAlloc {
    fn name(&self) -> &'static str {
        "spoiler"
    }

    fn rounds(&self, budget_pages: u64) -> Vec<u64> {
        chunked(budget_pages, self.chunk)
    }

    fn survey(&self, m: &Machine, domain: DomainId, pages: u64) -> Result<ConsecRegion> {
        // Probe stride: half a page. Fine enough to see every row of
        // the medium geometry, and the coarsest granularity SPOILER
        // realistically resolves.
        let stride = (LINES_PER_PAGE / 2).max(1);
        // Per group: (bank representative, rows as (row rep, slot)).
        let mut groups: Vec<(CacheLineAddr, Vec<(CacheLineAddr, u64)>)> = Vec::new();
        let mut rows: Vec<PresumedRow> = Vec::new();
        let mut probe = 0u64;
        while probe < pages * LINES_PER_PAGE {
            let cand = CacheLineAddr(probe);
            probe += stride;
            let mut placed = false;
            for (gi, (bank_rep, row_reps)) in groups.iter_mut().enumerate() {
                match m.probe_pair(domain, cand, *bank_rep)? {
                    ProbeOutcome::NoConflict => continue,
                    ProbeOutcome::RowHit | ProbeOutcome::RowConflict => {
                        let mut slot = None;
                        for (row_rep, s) in row_reps.iter() {
                            if m.probe_pair(domain, cand, *row_rep)? == ProbeOutcome::RowHit {
                                slot = Some(*s);
                                break;
                            }
                        }
                        let slot = slot.unwrap_or_else(|| {
                            let s = row_reps.len() as u64;
                            row_reps.push((cand, s));
                            s
                        });
                        match rows.iter_mut().find(|r| r.group == gi && r.slot == slot) {
                            Some(r) => r.lines.push(cand),
                            None => rows.push(PresumedRow {
                                group: gi,
                                slot,
                                lines: vec![cand],
                            }),
                        }
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                let gi = groups.len();
                groups.push((cand, vec![(cand, 0)]));
                rows.push(PresumedRow {
                    group: gi,
                    slot: 0,
                    lines: vec![cand],
                });
            }
        }
        Ok(ConsecRegion {
            strategy: "spoiler",
            exact: false,
            rows,
        }
        .canonicalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime::machine::MachineConfig;
    use hammertime::taxonomy::DefenseKind;

    const DOM: DomainId = DomainId(7);

    fn machine_with(alloc: &dyn ConsecAllocator, pages: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 24)).unwrap();
        for round in alloc.rounds(pages) {
            m.add_tenant(DOM, round).unwrap();
            m.add_tenant(DomainId(8), 1).unwrap();
        }
        m
    }

    #[test]
    fn chunked_rounds_cover_budget() {
        assert_eq!(chunked(7, 2), vec![2, 2, 2, 1]);
        assert_eq!(chunked(4, 2), vec![2, 2]);
        assert_eq!(HugepageAlloc.rounds(9), vec![9]);
    }

    #[test]
    fn pfn_oracle_matches_ground_truth() {
        let alloc = PfnLeakAlloc::default();
        let m = machine_with(&alloc, 8);
        let oracle = alloc.survey(&m, DOM, 8).unwrap();
        let truth = exact_survey(&m, DOM, "pfn");
        assert!(oracle.exact);
        assert_eq!(oracle.rows.len(), truth.rows.len());
        for (a, b) in oracle.rows.iter().zip(truth.rows.iter()) {
            assert_eq!((a.group, a.slot), (b.group, b.slot));
            assert_eq!(a.lines, b.lines);
        }
    }

    #[test]
    fn spoiler_groups_agree_with_banks_without_reading_the_map() {
        let alloc = SpoilerAlloc::default();
        let m = machine_with(&alloc, 8);
        let region = alloc.survey(&m, DOM, 8).unwrap();
        assert!(!region.exact);
        let g = m.config().geometry;
        // Two probes in the same presumed row must really share a
        // (bank, row); different groups must really be different banks.
        let coord = |l: CacheLineAddr| {
            let p = m.translate(DOM, l).unwrap();
            let (bank, row) = m.mc().locate(p).unwrap();
            (bank.flat(&g), row)
        };
        for r in &region.rows {
            let c0 = coord(r.lines[0]);
            for &l in &r.lines[1..] {
                assert_eq!(coord(l), c0);
            }
        }
        for a in &region.rows {
            for b in &region.rows {
                let same_bank = coord(a.lines[0]).0 == coord(b.lines[0]).0;
                assert_eq!(a.group == b.group, same_bank);
            }
        }
    }

    #[test]
    fn thp_view_is_plausible_but_not_oracle() {
        let alloc = ThpBuddyAlloc::default();
        let m = machine_with(&alloc, 8);
        let region = alloc.survey(&m, DOM, 8).unwrap();
        assert!(!region.exact);
        assert!(!region.is_empty());
        // Every line the view claims really belongs to the attacker.
        for r in &region.rows {
            for &l in &r.lines {
                assert!(m.translate(DOM, l).is_ok());
            }
        }
    }
}
