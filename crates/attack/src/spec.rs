//! Declarative attack triples: `allocator/hammerer/victim` by name.
//!
//! An [`AttackSpec`] is the serializable, CLI-facing description of a
//! pipeline composition. `parse` and `name` round-trip, so triples can
//! travel through fleet configs, experiment labels, and command lines
//! without carrying trait objects.

use serde::{Deserialize, Serialize};

use crate::alloc::{ConsecAllocator, HugepageAlloc, PfnLeakAlloc, SpoilerAlloc, ThpBuddyAlloc};
use crate::hammer::{
    DecoyPaced, DmaSided, DoubleSided, FuzzedSided, Hammerer, ManySided, SingleSided,
};
use crate::victim::{FlipCountVictim, KeyMaterialVictim, PageTableBitVictim, VictimOrchestrator};
use hammertime_common::{Error, Result};

/// Contiguity-acquisition strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// One contiguous hugepage-style grab ([`HugepageAlloc`]).
    Hugepage,
    /// THP buddy chunks with presumed chaining ([`ThpBuddyAlloc`]).
    ThpBuddy,
    /// Privileged pfn-leak oracle ([`PfnLeakAlloc`]).
    PfnLeak,
    /// SPOILER-style timing inference ([`SpoilerAlloc`]).
    Spoiler,
}

impl AllocatorKind {
    /// All allocator kinds, in canonical (name-sorted) order.
    pub const ALL: [AllocatorKind; 4] = [
        AllocatorKind::Hugepage,
        AllocatorKind::PfnLeak,
        AllocatorKind::Spoiler,
        AllocatorKind::ThpBuddy,
    ];

    /// The spec-string token.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Hugepage => "hugepage",
            AllocatorKind::ThpBuddy => "thp",
            AllocatorKind::PfnLeak => "pfn",
            AllocatorKind::Spoiler => "spoiler",
        }
    }

    /// Builds the strategy.
    pub fn build(self) -> Box<dyn ConsecAllocator> {
        match self {
            AllocatorKind::Hugepage => Box::new(HugepageAlloc),
            AllocatorKind::ThpBuddy => Box::new(ThpBuddyAlloc::default()),
            AllocatorKind::PfnLeak => Box::new(PfnLeakAlloc::default()),
            AllocatorKind::Spoiler => Box::new(SpoilerAlloc::default()),
        }
    }
}

/// Hammer-pattern strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HammererKind {
    /// One-row hammer ([`SingleSided`]).
    Single,
    /// Sandwich pair ([`DoubleSided`]).
    Double,
    /// `n` spaced aggressors ([`ManySided`]).
    Many(usize),
    /// Seeded fuzzed schedule over `n` aggressors ([`FuzzedSided`]).
    Fuzzed(usize),
    /// Decoy-paced counter evasion ([`DecoyPaced`]).
    Paced,
    /// Device-issued pair ([`DmaSided`]).
    Dma,
}

/// Canonical aggressor count for `many`/`fuzzed` in the cross product.
const CANONICAL_N: usize = 6;

impl HammererKind {
    /// The canonical kinds enumerated by [`AttackSpec::all_triples`].
    pub const ALL: [HammererKind; 6] = [
        HammererKind::Dma,
        HammererKind::Double,
        HammererKind::Fuzzed(CANONICAL_N),
        HammererKind::Many(CANONICAL_N),
        HammererKind::Paced,
        HammererKind::Single,
    ];

    /// The spec-string token (`many:6`, `fuzzed:6` carry their arity).
    pub fn name(self) -> String {
        match self {
            HammererKind::Single => "single".into(),
            HammererKind::Double => "double".into(),
            HammererKind::Many(n) => format!("many:{n}"),
            HammererKind::Fuzzed(n) => format!("fuzzed:{n}"),
            HammererKind::Paced => "paced".into(),
            HammererKind::Dma => "dma".into(),
        }
    }

    /// Builds the strategy. `mac` (the DIMM's maximum activation
    /// count) sizes the paced hammer's burst just under the counter
    /// thresholds derived from it, mirroring `HammerPattern::paced`
    /// use elsewhere.
    pub fn build(self, mac: u64) -> Box<dyn Hammerer> {
        match self {
            HammererKind::Single => Box::new(SingleSided),
            HammererKind::Double => Box::new(DoubleSided),
            HammererKind::Many(n) => Box::new(ManySided(n)),
            HammererKind::Fuzzed(n) => Box::new(FuzzedSided(n)),
            HammererKind::Paced => Box::new(DecoyPaced {
                burst: (mac / 8).saturating_sub(1).max(1),
            }),
            HammererKind::Dma => Box::new(DmaSided),
        }
    }
}

/// Victim-orchestration selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VictimKind {
    /// Raw cross-domain flips ([`FlipCountVictim`]).
    FlipCount,
    /// PTE PFN-field hits ([`PageTableBitVictim`]).
    PageTableBit,
    /// Key-buffer hits ([`KeyMaterialVictim`]).
    KeyMaterial,
}

impl VictimKind {
    /// All victim kinds, in canonical (name-sorted) order.
    pub const ALL: [VictimKind; 3] = [
        VictimKind::FlipCount,
        VictimKind::KeyMaterial,
        VictimKind::PageTableBit,
    ];

    /// The spec-string token.
    pub fn name(self) -> &'static str {
        match self {
            VictimKind::FlipCount => "flips",
            VictimKind::PageTableBit => "ptbit",
            VictimKind::KeyMaterial => "key",
        }
    }

    /// Builds the orchestrator.
    pub fn build(self) -> Box<dyn VictimOrchestrator> {
        match self {
            VictimKind::FlipCount => Box::new(FlipCountVictim),
            VictimKind::PageTableBit => Box::new(PageTableBitVictim),
            VictimKind::KeyMaterial => Box::new(KeyMaterialVictim::default()),
        }
    }
}

/// A named (allocator, hammerer, victim) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSpec {
    /// How the attacker acquires presumed-contiguous memory.
    pub allocator: AllocatorKind,
    /// The temporal pattern over that memory.
    pub hammerer: HammererKind,
    /// What counts as success.
    pub victim: VictimKind,
}

impl AttackSpec {
    /// The canonical `alloc/hammer/victim` string.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}",
            self.allocator.name(),
            self.hammerer.name(),
            self.victim.name()
        )
    }

    /// Parses an `alloc/hammer/victim` string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] naming the bad component.
    pub fn parse(s: &str) -> Result<AttackSpec> {
        let parts: Vec<&str> = s.split('/').collect();
        let [a, h, v] = parts[..] else {
            return Err(Error::Config(format!(
                "attack spec '{s}' is not of the form allocator/hammerer/victim"
            )));
        };
        let allocator = match a {
            "hugepage" => AllocatorKind::Hugepage,
            "thp" => AllocatorKind::ThpBuddy,
            "pfn" => AllocatorKind::PfnLeak,
            "spoiler" => AllocatorKind::Spoiler,
            _ => {
                return Err(Error::Config(format!(
                    "unknown allocator '{a}' (hugepage, thp, pfn, spoiler)"
                )))
            }
        };
        let arity = |tail: &str, what: &str| -> Result<usize> {
            let n: usize = tail
                .parse()
                .map_err(|_| Error::Config(format!("bad {what} arity '{tail}'")))?;
            if n == 0 {
                return Err(Error::Config(format!("{what} arity must be nonzero")));
            }
            Ok(n)
        };
        let hammerer = match h {
            "single" => HammererKind::Single,
            "double" => HammererKind::Double,
            "paced" => HammererKind::Paced,
            "dma" => HammererKind::Dma,
            _ if h.starts_with("many:") => HammererKind::Many(arity(&h[5..], "many")?),
            _ if h.starts_with("fuzzed:") => HammererKind::Fuzzed(arity(&h[7..], "fuzzed")?),
            _ => {
                return Err(Error::Config(format!(
                    "unknown hammerer '{h}' (single, double, many:N, fuzzed:N, paced, dma)"
                )))
            }
        };
        let victim = match v {
            "flips" => VictimKind::FlipCount,
            "ptbit" => VictimKind::PageTableBit,
            "key" => VictimKind::KeyMaterial,
            _ => {
                return Err(Error::Config(format!(
                    "unknown victim '{v}' (flips, ptbit, key)"
                )))
            }
        };
        Ok(AttackSpec {
            allocator,
            hammerer,
            victim,
        })
    }

    /// The full canonical cross product (4 × 6 × 3 = 72 triples),
    /// sorted by `name()` — the stable enumeration `--list-combos`
    /// prints and the build-everything test walks.
    pub fn all_triples() -> Vec<AttackSpec> {
        let mut out = Vec::new();
        for a in AllocatorKind::ALL {
            for h in HammererKind::ALL {
                for v in VictimKind::ALL {
                    out.push(AttackSpec {
                        allocator: a,
                        hammerer: h,
                        victim: v,
                    });
                }
            }
        }
        out.sort_by_key(AttackSpec::name);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for spec in AttackSpec::all_triples() {
            assert_eq!(AttackSpec::parse(&spec.name()).unwrap(), spec);
        }
        let s = AttackSpec::parse("thp/many:4/key").unwrap();
        assert_eq!(s.hammerer, HammererKind::Many(4));
        assert_eq!(s.name(), "thp/many:4/key");
    }

    #[test]
    fn bad_specs_name_the_offending_component() {
        for (bad, hint) in [
            ("thp/double", "allocator/hammerer/victim"),
            ("slab/double/flips", "unknown allocator"),
            ("thp/quad/flips", "unknown hammerer"),
            ("thp/many:0/flips", "arity"),
            ("thp/many:x/flips", "arity"),
            ("thp/double/coins", "unknown victim"),
        ] {
            let err = AttackSpec::parse(bad).unwrap_err();
            assert!(
                err.message().contains(hint),
                "{bad}: {} !~ {hint}",
                err.message()
            );
        }
    }

    #[test]
    fn cross_product_is_sorted_and_complete() {
        let triples = AttackSpec::all_triples();
        assert_eq!(triples.len(), 4 * 6 * 3);
        let names: Vec<String> = triples.iter().map(AttackSpec::name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let unique: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
