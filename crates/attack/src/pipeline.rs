//! Composing a triple into a runnable attack.
//!
//! [`AttackRun`] is the executable form of an [`AttackSpec`]: it
//! builds a machine, drives the allocator's acquisition rounds
//! (interleaving victim allocations so physical adjacency is up to the
//! strategy, not the harness), surveys, plans the hammer over the
//! *presumed* view, and judges the result with the victim
//! orchestrator. [`arm_on_scenario`] is the fleet-facing half: it arms
//! an existing [`CloudScenario`] tenant with a triple's hammer so
//! attack pipelines ride as tenant workloads on fleet machines.

use hammertime::machine::MachineConfig;
use hammertime::scenario::{AttackTargeting, CloudScenario};
use hammertime::{Machine, SimReport};
use hammertime_common::{DetRng, DomainId, Result};

use crate::spec::AttackSpec;
use crate::victim::{VictimOrchestrator, VictimVerdict};

/// The attacker tenant in a pipeline-built machine.
pub const ATTACKER: DomainId = DomainId(1);
/// The victim tenant in a pipeline-built machine.
pub const VICTIM: DomainId = DomainId(2);

/// Salt separating the pipeline's rng stream from machine-internal
/// forks of the same configuration seed.
const PIPELINE_SALT: u64 = 0xA77A_C4ED;

/// FNV-1a, for deriving a per-triple rng fork from the spec name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic rng fork a triple's hammerer draws from: keyed by
/// configuration seed and triple name only — never machine state — so
/// schedules are identical across `--jobs` values and cell orderings.
pub fn triple_rng(seed: u64, spec: &AttackSpec) -> DetRng {
    DetRng::new(seed ^ PIPELINE_SALT).fork(fnv1a(&spec.name()))
}

/// What one pipeline execution produced.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The triple that ran, as `alloc/hammer/victim`.
    pub triple: String,
    /// Ground-truth adjacency of the planned aggressors to the victim.
    pub targeting: AttackTargeting,
    /// Whether the allocator's survey was ground truth.
    pub exact: bool,
    /// Number of aggressor rows the hammer drove.
    pub aggressors: usize,
    /// The victim orchestrator's judgement.
    pub verdict: VictimVerdict,
    /// The machine's full simulation report.
    pub report: SimReport,
}

/// A composed, executable attack pipeline.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// The triple to execute.
    pub spec: AttackSpec,
    /// Machine configuration (defense under test, seed, geometry).
    pub cfg: MachineConfig,
    /// Aggressor accesses the hammer issues.
    pub accesses: u64,
    /// Refresh windows to simulate.
    pub windows: u64,
    /// Attacker allocation budget in pages.
    pub attacker_pages: u64,
    /// Victim foreground accesses.
    pub victim_reads: u64,
}

impl AttackRun {
    /// A pipeline run with the harness defaults used by experiments.
    pub fn new(spec: AttackSpec, cfg: MachineConfig) -> AttackRun {
        AttackRun {
            spec,
            cfg,
            accesses: 3_000,
            windows: 40,
            attacker_pages: 12,
            victim_reads: 400,
        }
    }

    /// Builds the machine and arms both tenants, without simulating:
    /// the shared front half of [`AttackRun::execute`], also used by
    /// tests that only need to know the triple *builds*.
    ///
    /// # Errors
    ///
    /// Propagates allocation, survey, and planning failures.
    pub fn prepare(&self) -> Result<(Machine, Prepared)> {
        let allocator = self.spec.allocator.build();
        let hammerer = self.spec.hammerer.build(self.cfg.disturbance.mac);
        let mut victim = self.spec.victim.build();

        let mut m = Machine::new(self.cfg.clone())?;
        // Acquisition: the allocator's rounds, with the victim's pages
        // dripped in between so adjacency is the strategy's doing.
        let rounds = allocator.rounds(self.attacker_pages);
        let mut victim_left = victim.pages().max(1);
        let interleave = rounds.len() > 1;
        for round in rounds {
            m.add_tenant(ATTACKER, round)?;
            if interleave && victim_left > 0 {
                m.add_tenant(VICTIM, 1)?;
                victim_left -= 1;
            }
        }
        if victim_left > 0 {
            m.add_tenant(VICTIM, victim_left)?;
        }

        let region = allocator.survey(&m, ATTACKER, self.attacker_pages)?;
        let rng = triple_rng(self.cfg.seed, &self.spec);
        let plan = hammerer.plan(&region, self.accesses, rng)?;
        let targeting = self.ground_truth_targeting(&m, &plan.aggressors)?;
        let aggressors = plan.aggressors.len();
        m.set_workload(ATTACKER, plan.workload)?;
        victim.setup(&mut m, VICTIM, self.victim_reads)?;
        Ok((
            m,
            Prepared {
                triple: self.spec.name(),
                targeting,
                exact: region.exact,
                aggressors,
                victim,
            },
        ))
    }

    /// Runs the pipeline end to end and judges the outcome.
    ///
    /// # Errors
    ///
    /// Propagates build and simulation failures.
    pub fn execute(&self) -> Result<AttackOutcome> {
        let (mut m, prep) = self.prepare()?;
        m.run(self.windows * self.cfg.timing.t_refw);
        let report = m.report();
        let flips = m.drain_annotated_flips();
        let verdict = prep.victim.judge(&m, VICTIM, &flips);
        Ok(AttackOutcome {
            triple: prep.triple,
            targeting: prep.targeting,
            exact: prep.exact,
            aggressors: prep.aggressors,
            verdict,
            report,
        })
    }

    /// Whether any planned aggressor really neighbors a victim-owned
    /// row within the assumed blast radius (ground truth — the
    /// attacker never sees this).
    fn ground_truth_targeting(
        &self,
        m: &Machine,
        aggressors: &[hammertime_common::CacheLineAddr],
    ) -> Result<AttackTargeting> {
        let radius = self.cfg.assumed_radius;
        for &vline in aggressors {
            let pline = m.translate(ATTACKER, vline)?;
            let (bank, row) = m.mc().locate(pline)?;
            for d in 1..=radius {
                for r in [row.checked_sub(d), row.checked_add(d)]
                    .into_iter()
                    .flatten()
                {
                    if m.owner_of_row(&bank, r) == Some(VICTIM) {
                        return Ok(AttackTargeting::CrossDomain);
                    }
                }
            }
        }
        Ok(AttackTargeting::IntraDomainOnly)
    }
}

/// The armed, not-yet-simulated state [`AttackRun::prepare`] returns
/// beside the machine.
pub struct Prepared {
    /// The triple, as `alloc/hammer/victim`.
    pub triple: String,
    /// Ground-truth adjacency of the planned aggressors.
    pub targeting: AttackTargeting,
    /// Whether the survey was ground truth.
    pub exact: bool,
    /// Aggressor rows the hammer will drive.
    pub aggressors: usize,
    /// The victim orchestrator, ready to judge after the run.
    pub victim: Box<dyn VictimOrchestrator>,
}

/// Arms an existing scenario's attacker with a triple's hammer: the
/// fleet entry point. The allocator cannot re-shape an allocation that
/// already happened, so only its *survey* runs (over the scenario
/// attacker's existing pages); the hammerer then plans on that view
/// and the workload is installed on the attacker tenant.
///
/// Returns the planned aggressor count.
///
/// # Errors
///
/// Propagates survey, planning, and installation failures.
pub fn arm_on_scenario(spec: &AttackSpec, s: &mut CloudScenario, accesses: u64) -> Result<usize> {
    let allocator = spec.allocator.build();
    let hammerer = spec.hammerer.build(s.machine.config().disturbance.mac);
    let pages = s.machine.leak_pfns(s.attacker).len() as u64;
    let region = allocator.survey(&s.machine, s.attacker, pages)?;
    let rng = triple_rng(s.machine.config().seed, spec);
    let plan = hammerer.plan(&region, accesses, rng)?;
    let n = plan.aggressors.len();
    s.machine.set_workload(s.attacker, plan.workload)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime::taxonomy::DefenseKind;

    #[test]
    fn triple_rng_keys_on_seed_and_name_only() {
        let a = AttackSpec::parse("pfn/fuzzed:6/flips").unwrap();
        let b = AttackSpec::parse("pfn/fuzzed:6/key").unwrap();
        assert_eq!(triple_rng(42, &a).next_u64(), triple_rng(42, &a).next_u64());
        assert_ne!(triple_rng(42, &a).next_u64(), triple_rng(42, &b).next_u64());
        assert_ne!(triple_rng(42, &a).next_u64(), triple_rng(43, &a).next_u64());
    }

    #[test]
    fn undefended_pfn_double_flips_the_victim() {
        let spec = AttackSpec::parse("pfn/double/flips").unwrap();
        let run = AttackRun::new(spec, MachineConfig::fast(DefenseKind::None, 24));
        let out = run.execute().unwrap();
        assert_eq!(out.targeting, AttackTargeting::CrossDomain);
        assert!(out.exact);
        assert!(out.verdict.success, "verdict: {:?}", out.verdict);
    }

    #[test]
    fn subarray_isolation_removes_adjacency_for_the_same_triple() {
        let spec = AttackSpec::parse("pfn/double/flips").unwrap();
        let run = AttackRun::new(
            spec,
            MachineConfig::fast(DefenseKind::SubarrayIsolation, 24),
        );
        let out = run.execute().unwrap();
        assert_eq!(out.targeting, AttackTargeting::IntraDomainOnly);
        assert_eq!(out.verdict.raw_flips, 0);
        assert!(!out.verdict.success);
    }

    #[test]
    fn victim_refresh_defense_suppresses_most_flips() {
        // The interleaved buddy layout co-locates both domains within
        // rows, so interrupt-driven refresh can't win every race — but
        // it must eliminate the overwhelming majority of flips.
        let spec = AttackSpec::parse("pfn/double/flips").unwrap();
        let none = AttackRun::new(spec, MachineConfig::fast(DefenseKind::None, 24))
            .execute()
            .unwrap();
        let defended = AttackRun::new(
            spec,
            MachineConfig::fast(DefenseKind::VictimRefreshInstr, 24),
        )
        .execute()
        .unwrap();
        assert!(none.verdict.raw_flips > 0);
        assert!(
            defended.verdict.raw_flips * 10 < none.verdict.raw_flips,
            "defended {} vs undefended {}",
            defended.verdict.raw_flips,
            none.verdict.raw_flips
        );
    }

    #[test]
    fn prepared_machine_checkpoints() {
        // Attacks must migrate in fleet mode: every workload the
        // pipeline installs supports box_clone.
        let spec = AttackSpec::parse("thp/paced/flips").unwrap();
        let run = AttackRun::new(spec, MachineConfig::fast(DefenseKind::None, 24));
        let (m, _) = run.prepare().unwrap();
        assert!(m.checkpoint().is_some());
    }
}
