//! **A1**: the attack-pipeline cross product against the defense
//! slate.
//!
//! One row per (triple, defense): did the composition achieve
//! ground-truth adjacency, how many raw cross-domain flips landed, how
//! many the victim orchestrator actually counted, and what the defense
//! spent. The curated triple set covers every allocator, every
//! hammerer, and every victim at least once (12 triples × 7 slates =
//! 84 rows) — the full 72-triple product is enumerable via
//! [`AttackSpec::all_triples`] and the `attack --list-combos` CLI.

use hammertime::experiments::{Cell, CellCtx, Experiment};
use hammertime::machine::MachineConfig;
use hammertime::scenario::AttackTargeting;
use hammertime::taxonomy::DefenseKind;

use crate::pipeline::AttackRun;
use crate::spec::AttackSpec;

/// The standard fast-scale MAC (mirrors the core experiments).
const MAC: u64 = 24;

/// The curated triples A1 sweeps: every allocator, hammerer, and
/// victim appears at least once.
pub const A1_TRIPLES: [&str; 12] = [
    "hugepage/single/flips",
    "hugepage/double/flips",
    "hugepage/paced/flips",
    "thp/double/flips",
    "thp/many:6/flips",
    "thp/fuzzed:6/flips",
    "pfn/double/ptbit",
    "pfn/double/key",
    "pfn/many:6/key",
    "pfn/dma/flips",
    "spoiler/double/flips",
    "spoiler/many:6/ptbit",
];

/// The defense slate each triple runs against: one representative per
/// taxonomy class plus the three accounting-era families (BreakHammer
/// throttle, Rubix scramble, CATT partition).
fn slate() -> [DefenseKind; 7] {
    [
        DefenseKind::None,
        DefenseKind::InDramTrr { table_size: 4 },
        DefenseKind::VictimRefreshInstr,
        DefenseKind::SubarrayIsolation,
        DefenseKind::BreakHammer { score_threshold: 4 },
        DefenseKind::RubixMapping,
        DefenseKind::CattPartition,
    ]
}

/// The A1 experiment singleton.
pub struct A1;

impl Experiment for A1 {
    fn id(&self) -> &'static str {
        "A1"
    }

    fn title(&self) -> &'static str {
        "Attack pipeline cross product: allocator x hammerer x victim vs defenses"
    }

    fn columns(&self) -> &'static [&'static str] {
        &[
            "triple",
            "defense",
            "targeting",
            "raw",
            "counted",
            "success",
            "ovh",
        ]
    }

    fn cells(&self, ctx: &CellCtx) -> Vec<Cell> {
        let ctx = *ctx;
        A1_TRIPLES
            .iter()
            .map(|&triple| {
                Cell::new(triple, move || {
                    let spec = AttackSpec::parse(triple)?;
                    let mut rows = Vec::new();
                    for defense in slate() {
                        let mut cfg = MachineConfig::fast(defense, MAC);
                        cfg.faults = ctx.faults;
                        let mut run = AttackRun::new(spec, cfg);
                        run.accesses = if ctx.quick { 2_500 } else { 8_000 };
                        run.windows = if ctx.quick { 40 } else { 150 };
                        run.victim_reads = if ctx.quick { 100 } else { 400 };
                        let out = run.execute()?;
                        let o = &out.report.overhead;
                        rows.push(vec![
                            out.triple.clone(),
                            defense.name().to_string(),
                            match out.targeting {
                                AttackTargeting::CrossDomain => "cross".to_string(),
                                AttackTargeting::IntraDomainOnly => "intra".to_string(),
                            },
                            out.verdict.raw_flips.to_string(),
                            out.verdict.counted_flips.to_string(),
                            if out.verdict.success { "yes" } else { "no" }.to_string(),
                            (o.refresh_ops + o.pages_remapped + o.lines_locked + o.interrupts)
                                .to_string(),
                        ]);
                    }
                    Ok(rows)
                })
            })
            .collect()
    }
}

/// The attack-crate experiment registry, in report order.
pub fn registry() -> Vec<&'static dyn Experiment> {
    vec![&A1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_triples_parse_and_cover_every_strategy() {
        let specs: Vec<AttackSpec> = A1_TRIPLES
            .iter()
            .map(|t| AttackSpec::parse(t).unwrap())
            .collect();
        assert_eq!(specs.len(), 12);
        for a in crate::spec::AllocatorKind::ALL {
            assert!(specs.iter().any(|s| s.allocator == a), "{}", a.name());
        }
        for h in crate::spec::HammererKind::ALL {
            assert!(specs.iter().any(|s| s.hammerer == h), "{}", h.name());
        }
        for v in crate::spec::VictimKind::ALL {
            assert!(specs.iter().any(|s| s.victim == v), "{}", v.name());
        }
    }
}
