//! Hammer-pattern strategies over a presumed-contiguous region.
//!
//! A [`Hammerer`] turns a [`ConsecRegion`] into a runnable
//! [`HammerPlan`]: it picks aggressors *in the attacker's presumed
//! coordinates* (never ground truth) and wraps them in one of the
//! `hammertime-workloads` pattern generators. The same hammerer
//! composed with a lower-fidelity allocator therefore hammers worse —
//! the degradation the cross-product experiment measures.

use hammertime_common::{CacheLineAddr, DetRng, Error, Result};
use hammertime_workloads::{DmaHammer, FuzzedHammer, HammerPattern, Workload};

use crate::region::ConsecRegion;

/// A planned hammer: the workload to install plus the attacker-virtual
/// aggressor lines it will drive (for ground-truth targeting checks).
pub struct HammerPlan {
    /// The workload to install on the attacker tenant.
    pub workload: Box<dyn Workload>,
    /// The aggressor lines the pattern drives, in attacker-virtual
    /// space.
    pub aggressors: Vec<CacheLineAddr>,
}

/// A temporal hammer pattern, parameterized by the region view.
pub trait Hammerer {
    /// Short name used in [`crate::AttackSpec`] triples.
    fn name(&self) -> &'static str;

    /// Plans a hammer over `region` issuing `accesses` aggressor
    /// accesses. `rng` is an explicit deterministic fork for the
    /// strategies that randomize (fuzzed schedules); non-randomizing
    /// strategies ignore it.
    ///
    /// # Errors
    ///
    /// Returns an error when the region is too small to express the
    /// pattern (for example, fewer than two rows for a double-sided
    /// pair).
    fn plan(&self, region: &ConsecRegion, accesses: u64, rng: DetRng) -> Result<HammerPlan>;
}

fn too_small(what: &str, region: &ConsecRegion) -> Error {
    Error::Config(format!(
        "{} hammer needs more rows than the {}-row {} region provides",
        what,
        region.len(),
        region.strategy
    ))
}

/// Classic single-sided hammer on one presumed row.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleSided;

impl Hammerer for SingleSided {
    fn name(&self) -> &'static str {
        "single"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, _rng: DetRng) -> Result<HammerPlan> {
        let picks = region.pick_spaced(1);
        let &a = picks.first().ok_or_else(|| too_small("single", region))?;
        Ok(HammerPlan {
            workload: Box::new(HammerPattern::single_sided(a, accesses)),
            aggressors: vec![a],
        })
    }
}

/// Double-sided hammer around a presumed sandwiched row.
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleSided;

impl Hammerer for DoubleSided {
    fn name(&self) -> &'static str {
        "double"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, _rng: DetRng) -> Result<HammerPlan> {
        let (a, b) = region
            .pick_pair()
            .ok_or_else(|| too_small("double", region))?;
        Ok(HammerPlan {
            workload: Box::new(HammerPattern::double_sided(a, b, accesses)),
            aggressors: vec![a, b],
        })
    }
}

/// TRRespass-style many-sided hammer over `n` spaced rows.
#[derive(Debug, Clone, Copy)]
pub struct ManySided(pub usize);

impl Hammerer for ManySided {
    fn name(&self) -> &'static str {
        "many"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, _rng: DetRng) -> Result<HammerPlan> {
        let picks = region.pick_spaced(self.0.max(1));
        if picks.is_empty() {
            return Err(too_small("many-sided", region));
        }
        Ok(HammerPlan {
            workload: Box::new(HammerPattern::many_sided(picks.clone(), accesses)),
            aggressors: picks,
        })
    }
}

/// Seeded Blacksmith-style fuzzed n-sided hammer: the per-period
/// schedule is drawn from the explicit [`DetRng`] fork, never ambient
/// machine state.
#[derive(Debug, Clone, Copy)]
pub struct FuzzedSided(pub usize);

impl Hammerer for FuzzedSided {
    fn name(&self) -> &'static str {
        "fuzzed"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, rng: DetRng) -> Result<HammerPlan> {
        let picks = region.pick_spaced(self.0.max(1));
        if picks.is_empty() {
            return Err(too_small("fuzzed", region));
        }
        Ok(HammerPlan {
            workload: Box::new(FuzzedHammer::generate(rng, &picks, accesses)),
            aggressors: picks,
        })
    }
}

/// Decoy-paced double-sided hammer: bursts of aggressor ACTs broken up
/// by a far-away decoy row to stay under per-row activation counters.
/// Degrades to a plain double-sided hammer when the region has no row
/// far enough from the pair to serve as a decoy.
#[derive(Debug, Clone, Copy)]
pub struct DecoyPaced {
    /// Aggressor ACTs per burst before a decoy is interleaved.
    pub burst: u64,
}

impl Hammerer for DecoyPaced {
    fn name(&self) -> &'static str {
        "paced"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, _rng: DetRng) -> Result<HammerPlan> {
        let (a, b) = region
            .pick_pair()
            .ok_or_else(|| too_small("paced", region))?;
        let pattern = HammerPattern::double_sided(a, b, accesses);
        let pattern = match region.pick_decoy(&[a, b], 4) {
            Some(decoy) => pattern.paced(self.burst.max(1), decoy),
            None => pattern,
        };
        Ok(HammerPlan {
            workload: Box::new(pattern),
            aggressors: vec![a, b],
        })
    }
}

/// DMA-issued double-sided hammer: the accesses arrive from a device,
/// bypassing the CPU cache hierarchy (no flush needed, different
/// provenance for defenses that track cores).
#[derive(Debug, Clone, Copy, Default)]
pub struct DmaSided;

impl Hammerer for DmaSided {
    fn name(&self) -> &'static str {
        "dma"
    }

    fn plan(&self, region: &ConsecRegion, accesses: u64, _rng: DetRng) -> Result<HammerPlan> {
        let (a, b) = region.pick_pair().ok_or_else(|| too_small("dma", region))?;
        Ok(HammerPlan {
            workload: Box::new(DmaHammer::new(0, vec![a, b], accesses)),
            aggressors: vec![a, b],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::PresumedRow;

    fn region(n: u64) -> ConsecRegion {
        ConsecRegion {
            strategy: "test",
            exact: true,
            rows: (0..n)
                .map(|s| PresumedRow {
                    group: 0,
                    slot: s,
                    lines: vec![CacheLineAddr(100 + s)],
                })
                .collect(),
        }
        .canonicalize()
    }

    #[test]
    fn hammerers_plan_on_a_healthy_region() {
        let r = region(12);
        let rng = DetRng::new(1);
        for h in [
            &SingleSided as &dyn Hammerer,
            &DoubleSided,
            &ManySided(4),
            &FuzzedSided(4),
            &DecoyPaced { burst: 3 },
            &DmaSided,
        ] {
            let plan = h.plan(&r, 50, rng.clone()).unwrap();
            assert!(!plan.aggressors.is_empty(), "{}", h.name());
            assert!(plan.workload.box_clone().is_some(), "{}", h.name());
        }
    }

    #[test]
    fn pair_hammerers_reject_single_row_regions() {
        let r = region(1);
        assert!(DoubleSided.plan(&r, 50, DetRng::new(1)).is_err());
        assert!(DmaSided.plan(&r, 50, DetRng::new(1)).is_err());
        assert!(SingleSided.plan(&r, 50, DetRng::new(1)).is_ok());
    }

    #[test]
    fn fuzzed_plan_depends_only_on_the_fork() {
        let r = region(12);
        let a = FuzzedSided(4).plan(&r, 50, DetRng::new(9)).unwrap();
        let b = FuzzedSided(4).plan(&r, 50, DetRng::new(9)).unwrap();
        assert_eq!(a.aggressors, b.aggressors);
    }
}
