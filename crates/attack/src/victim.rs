//! Victim orchestration: what "success" means beyond raw flips.
//!
//! The paper's threat model cares about *consequential* flips, not
//! flip counts (§1): a bit flip only matters if it lands somewhere
//! that changes the victim's security state. Each
//! [`VictimOrchestrator`] stages the victim's memory, runs its
//! foreground traffic, and then judges the drained flip events —
//! counting only the subset that would actually compromise this
//! victim. The gap between `raw_flips` and `counted_flips` is the gap
//! between "the DIMM is hammerable" and "the attack worked".

use hammertime::dram::FlipEvent;
use hammertime::Machine;
use hammertime_common::addr::LINES_PER_PAGE;
use hammertime_common::{CacheLineAddr, DomainId, Result};
use hammertime_workloads::StreamWorkload;

/// A victim's judgement of an attack run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimVerdict {
    /// Cross-domain flips that landed anywhere in this victim's
    /// memory.
    pub raw_flips: u64,
    /// The subset of `raw_flips` this victim considers consequential.
    pub counted_flips: u64,
    /// Whether the attack succeeded by this victim's definition.
    pub success: bool,
}

/// Stages a victim, runs its traffic, and defines attack success.
pub trait VictimOrchestrator {
    /// Short name used in [`crate::AttackSpec`] triples.
    fn name(&self) -> &'static str;

    /// Pages the victim tenant needs.
    fn pages(&self) -> u64 {
        4
    }

    /// Installs the victim's foreground workload (and records any
    /// target state the judgement needs). Called after all tenants are
    /// allocated, before the simulation runs.
    ///
    /// # Errors
    ///
    /// Propagates machine errors from workload installation.
    fn setup(&mut self, m: &mut Machine, victim: DomainId, reads: u64) -> Result<()>;

    /// Judges the drained flip events against this victim's notion of
    /// compromise.
    fn judge(&self, m: &Machine, victim: DomainId, flips: &[FlipEvent]) -> VictimVerdict;
}

/// All of the victim's virtual lines, in deterministic (vpage, line)
/// order.
fn victim_arena(m: &Machine, victim: DomainId) -> Vec<CacheLineAddr> {
    m.leak_pfns(victim)
        .into_iter()
        .flat_map(|(vpage, _)| {
            (0..LINES_PER_PAGE).map(move |l| CacheLineAddr(vpage * LINES_PER_PAGE + l))
        })
        .collect()
}

/// Installs the standard victim foreground: a read-mostly stream over
/// the victim's whole arena.
fn install_stream(m: &mut Machine, victim: DomainId, reads: u64) -> Result<()> {
    let arena = victim_arena(m, victim);
    m.set_workload(victim, Box::new(StreamWorkload::new(arena, reads, 0)))
}

/// Flips that landed in this victim's memory from another domain.
fn raw_flips(victim: DomainId, flips: &[FlipEvent]) -> Vec<&FlipEvent> {
    flips
        .iter()
        .filter(|f| f.victim_domain == Some(victim) && f.is_cross_domain())
        .collect()
}

/// The baseline victim: any cross-domain flip in its memory counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlipCountVictim;

impl VictimOrchestrator for FlipCountVictim {
    fn name(&self) -> &'static str {
        "flips"
    }

    fn setup(&mut self, m: &mut Machine, victim: DomainId, reads: u64) -> Result<()> {
        install_stream(m, victim, reads)
    }

    fn judge(&self, _m: &Machine, victim: DomainId, flips: &[FlipEvent]) -> VictimVerdict {
        let raw = raw_flips(victim, flips).len() as u64;
        VictimVerdict {
            raw_flips: raw,
            counted_flips: raw,
            success: raw > 0,
        }
    }
}

/// A page-table-escalation victim: its pages hold PTE-like 64-bit
/// words, and only flips inside a word's PFN field (bits 12–47 of
/// each 64-bit word) change which frame the entry points at — the
/// classic kernel-privilege-escalation payload. Flips in the low
/// permission bits or the high ignored bits are counted as raw but
/// not consequential.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageTableBitVictim;

/// Whether a row-bit offset lands in the PFN field of its PTE word.
fn hits_pfn_field(bit: u64) -> bool {
    (12..48).contains(&(bit % 64))
}

impl VictimOrchestrator for PageTableBitVictim {
    fn name(&self) -> &'static str {
        "ptbit"
    }

    fn setup(&mut self, m: &mut Machine, victim: DomainId, reads: u64) -> Result<()> {
        install_stream(m, victim, reads)
    }

    fn judge(&self, _m: &Machine, victim: DomainId, flips: &[FlipEvent]) -> VictimVerdict {
        let raw = raw_flips(victim, flips);
        let counted = raw.iter().filter(|f| hits_pfn_field(f.bit)).count() as u64;
        VictimVerdict {
            raw_flips: raw.len() as u64,
            counted_flips: counted,
            success: counted > 0,
        }
    }
}

/// A key-material victim modelled on the RSA/Kyber fault attacks: only
/// flips that land in one specific page (the key / error-matrix
/// buffer), and within each line only in the first half holding the
/// matrix words, corrupt the secret. Everything else the victim
/// tolerates.
#[derive(Debug, Clone, Default)]
pub struct KeyMaterialVictim {
    /// Physical frames holding the key buffer, recorded at setup.
    target_frames: Vec<u64>,
}

/// Bits per cache line.
const LINE_BITS: u64 = 512;

impl VictimOrchestrator for KeyMaterialVictim {
    fn name(&self) -> &'static str {
        "key"
    }

    fn setup(&mut self, m: &mut Machine, victim: DomainId, reads: u64) -> Result<()> {
        // The victim's first page is the key buffer; record the frames
        // backing it so the judgement survives remapping defenses
        // moving *other* rows around.
        self.target_frames.clear();
        for l in 0..LINES_PER_PAGE {
            let pline = m.translate(victim, CacheLineAddr(l))?;
            if !self.target_frames.contains(&pline.page_frame()) {
                self.target_frames.push(pline.page_frame());
            }
        }
        install_stream(m, victim, reads)
    }

    fn judge(&self, m: &Machine, victim: DomainId, flips: &[FlipEvent]) -> VictimVerdict {
        let raw = raw_flips(victim, flips);
        let counted = raw
            .iter()
            .filter(|f| {
                let bank = m.bank_at(f.flat_bank);
                let in_buffer = m
                    .frames_of_row(&bank, f.victim_row)
                    .iter()
                    .any(|fr| self.target_frames.contains(fr));
                in_buffer && (f.bit % LINE_BITS) < LINE_BITS / 2
            })
            .count() as u64;
        VictimVerdict {
            raw_flips: raw.len() as u64,
            counted_flips: counted,
            success: counted > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime_common::Cycle;

    fn flip(victim: u32, aggressor: u32, bit: u64) -> FlipEvent {
        FlipEvent {
            time: Cycle(0),
            flat_bank: 0,
            victim_row: 5,
            aggressor_row: 4,
            bit,
            victim_domain: Some(DomainId(victim)),
            aggressor_domain: Some(DomainId(aggressor)),
        }
    }

    #[test]
    fn pfn_field_window_is_36_of_64_bits() {
        assert!(!hits_pfn_field(0));
        assert!(!hits_pfn_field(11));
        assert!(hits_pfn_field(12));
        assert!(hits_pfn_field(47));
        assert!(!hits_pfn_field(48));
        assert!(hits_pfn_field(64 + 20));
    }

    #[test]
    fn ptbit_counts_a_subset_of_raw() {
        let flips = vec![
            flip(2, 1, 3),       // permission bits: raw only
            flip(2, 1, 64 + 20), // PFN field: counted
            flip(2, 2, 20),      // intra-domain: ignored entirely
            flip(3, 1, 20),      // other victim: ignored
        ];
        let m_less = PageTableBitVictim;
        // judge() of ptbit never touches the machine; exercise via a
        // machine-free call path.
        let raw = raw_flips(DomainId(2), &flips);
        assert_eq!(raw.len(), 2);
        let counted = raw.iter().filter(|f| hits_pfn_field(f.bit)).count();
        assert_eq!(counted, 1);
        assert_eq!(m_less.name(), "ptbit");
    }
}
