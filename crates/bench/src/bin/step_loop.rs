//! Step-loop bench runner: times the fast scheduler against the
//! reference linear scan (and batched vs per-ACT disturbance) on the
//! shared scenarios from [`hammertime_bench::step_loop`], then writes
//! `BENCH_step_loop.json` seeding the perf trajectory.
//!
//! Usage: `step_loop [--quick] [--out PATH]`. Default output is
//! `BENCH_step_loop.json` at the repository root. `--quick` shrinks
//! every scenario for CI smoke runs.

use hammertime_bench::step_loop::{
    drive_t1_cell, hammer_burst, idle_mc, idle_poll, idle_poll_on, t1_defense_catalog, IDLE_QUANTUM,
};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct Scenario {
    name: String,
    /// What `work` counts: simulated cycles, ACTs, or experiment cells.
    unit: String,
    work: u64,
    baseline_secs: f64,
    optimized_secs: f64,
    baseline_per_sec: f64,
    optimized_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    mode: String,
    scenarios: Vec<Scenario>,
}

/// Best-of-`reps` wall time of `f`, in seconds. Best-of is robust to
/// scheduler noise on the 1-vCPU containers this runs in.
fn time_best(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn scenario(name: &str, unit: &str, work: u64, baseline: f64, optimized: f64) -> Scenario {
    Scenario {
        name: name.into(),
        unit: unit.into(),
        work,
        baseline_secs: baseline,
        optimized_secs: optimized,
        baseline_per_sec: work as f64 / baseline,
        optimized_per_sec: work as f64 / optimized,
        speedup: baseline / optimized,
    }
}

fn main() {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: step_loop [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_step_loop.json")
    });
    let reps = if quick { 2 } else { 3 };
    let mut scenarios = Vec::new();

    // Idle-heavy: quantum polling across an empty controller. The
    // memoized scan answers each poll in O(1).
    let idle_cycles: u64 = if quick { 200_000 } else { 2_000_000 };
    let steps_fast = idle_poll(idle_cycles, true);
    assert_eq!(
        steps_fast,
        idle_poll(idle_cycles, false),
        "drivers disagree on idle step count"
    );
    // Construction is excluded from the timed region: a fresh
    // controller is built per rep, then only the poll loop is timed.
    let time_idle = |fast: bool| {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut mc = idle_mc();
            let t = Instant::now();
            idle_poll_on(&mut mc, idle_cycles, fast);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let reference = time_idle(false);
    let fast = time_idle(true);
    eprintln!(
        "idle_poll: {idle_cycles} cycles ({} polls), ref {reference:.3}s fast {fast:.3}s ({:.1}x)",
        idle_cycles / IDLE_QUANTUM,
        reference / fast
    );
    scenarios.push(scenario(
        "idle_poll",
        "cycles",
        idle_cycles,
        reference,
        fast,
    ));

    // T1 defense-matrix cell set: every mitigation cell driven through
    // an identical hammer + benign script.
    let catalog = t1_defense_catalog();
    let cells = catalog.len() as u64;
    for (name, mitigation, trr) in &catalog {
        let a = drive_t1_cell(*mitigation, *trr, true, quick);
        let b = drive_t1_cell(*mitigation, *trr, false, quick);
        assert_eq!(a, b, "cell {name} diverged between drivers");
    }
    let reference = time_best(reps, || {
        for (_, m, trr) in &catalog {
            drive_t1_cell(*m, *trr, false, quick);
        }
    });
    let fast = time_best(reps, || {
        for (_, m, trr) in &catalog {
            drive_t1_cell(*m, *trr, true, quick);
        }
    });
    eprintln!(
        "t1_defense_matrix: {cells} cells, ref {reference:.3}s fast {fast:.3}s ({:.1}x)",
        reference / fast
    );
    scenarios.push(scenario(
        "t1_defense_matrix",
        "cells",
        cells,
        reference,
        fast,
    ));

    // Device-level hammer burst: batched vs per-ACT disturbance.
    let acts: u32 = if quick { 20_000 } else { 200_000 };
    assert_eq!(
        hammer_burst(acts.min(2_000), false),
        hammer_burst(acts.min(2_000), true),
        "batched flip count diverged"
    );
    let reference = time_best(reps, || {
        hammer_burst(acts, false);
    });
    let fast = time_best(reps, || {
        hammer_burst(acts, true);
    });
    eprintln!(
        "hammer_burst: {acts} ACTs, per-ACT {reference:.3}s batched {fast:.3}s ({:.1}x)",
        reference / fast
    );
    scenarios.push(scenario(
        "hammer_burst",
        "acts",
        acts as u64,
        reference,
        fast,
    ));

    let report = Report {
        bench: "step_loop".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write bench json");
    eprintln!("wrote {}", out.display());
}
