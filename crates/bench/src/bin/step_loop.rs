//! Step-loop bench runner: times the fast scheduler against the
//! reference linear scan (and batched vs per-ACT disturbance) on the
//! shared scenarios from [`hammertime_bench::step_loop`], then writes
//! `BENCH_step_loop.json` seeding the perf trajectory.
//!
//! Usage: `step_loop [--quick] [--out PATH] [--only NAME]...
//! [--check BASELINE.json [--tolerance PCT]]
//! [--gate-disabled-overhead PCT]`. Default output is
//! `BENCH_step_loop.json` at the repository root. `--quick` shrinks
//! every scenario for CI smoke runs. `--only` (repeatable) restricts
//! the run to the named scenarios — handy for iterating on one
//! scenario without paying for the whole matrix; `--check` treats
//! scenarios missing from a filtered run as informational, so the two
//! flags compose.
//!
//! `--check` compares this run's optimized throughput per scenario
//! against a previously written report and exits nonzero on any
//! regression beyond the tolerance (default 2%). Absolute throughput
//! only compares on the same machine in the same thermal state, so
//! this is a *local* tool for before/after comparisons, not a CI
//! gate.
//!
//! `--gate-disabled-overhead PCT` is the CI-safe guard that the
//! disabled telemetry layer stays off the hot path: it times the
//! hammer burst through the public issue path (tracer `None`, one
//! `is_none()` check) against the same burst with the check compiled
//! out, interleaving the reps so machine drift hits both sides, and
//! exits nonzero if the disabled path is more than PCT% slower.

use hammertime_bench::step_loop::{
    drive_t1_cell, drive_t1_cell_shadowed, fleet_sweep, fleet_sweep_durable, hammer_burst,
    hammer_burst_bypassing_tracer, hammer_burst_wheel, hammer_burst_with_tracer, idle_mc,
    idle_poll, idle_poll_on, replay_from_checkpoint, replay_from_scratch, resume_digest,
    resume_setup, t1_defense_catalog, IDLE_QUANTUM,
};
use hammertime_check::ShadowChecker;
use hammertime_telemetry::Tracer;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize, Deserialize)]
struct Scenario {
    name: String,
    /// What `work` counts: simulated cycles, ACTs, or experiment cells.
    unit: String,
    work: u64,
    baseline_secs: f64,
    optimized_secs: f64,
    baseline_per_sec: f64,
    optimized_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    mode: String,
    scenarios: Vec<Scenario>,
}

/// Compares this run against `baseline`, scenario by scenario on
/// work-normalized optimized throughput. Returns the regression
/// messages (empty → within tolerance). Scenarios only one side has
/// are reported but never fail the check, so adding a scenario does
/// not require regenerating the baseline first.
fn check_against(report: &Report, baseline: &Report, tolerance_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for old in &baseline.scenarios {
        let Some(new) = report.scenarios.iter().find(|s| s.name == old.name) else {
            eprintln!("check: scenario {} missing from this run", old.name);
            continue;
        };
        let floor = old.optimized_per_sec * (1.0 - tolerance_pct / 100.0);
        let delta = 100.0 * (1.0 - new.optimized_per_sec / old.optimized_per_sec);
        if new.optimized_per_sec < floor {
            failures.push(format!(
                "{}: optimized {:.0} {}/s vs baseline {:.0} ({delta:+.1}% slower, tolerance {tolerance_pct}%)",
                new.name, new.optimized_per_sec, new.unit, old.optimized_per_sec
            ));
        } else {
            eprintln!(
                "check: {} ok ({:.0} {}/s vs baseline {:.0}, {delta:+.1}%)",
                new.name, new.optimized_per_sec, new.unit, old.optimized_per_sec
            );
        }
    }
    failures
}

/// Best-of-`reps` wall time of `f`, in seconds. Best-of is robust to
/// scheduler noise on the 1-vCPU containers this runs in.
fn time_best(reps: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn scenario(name: &str, unit: &str, work: u64, baseline: f64, optimized: f64) -> Scenario {
    Scenario {
        name: name.into(),
        unit: unit.into(),
        work,
        baseline_secs: baseline,
        optimized_secs: optimized,
        baseline_per_sec: work as f64 / baseline,
        optimized_per_sec: work as f64 / optimized,
        speedup: baseline / optimized,
    }
}

fn main() {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut tolerance = 2.0f64;
    let mut gate: Option<f64> = None;
    let mut durable_gate: Option<f64> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(PathBuf::from(args.next().expect("--out needs a path"))),
            "--only" => only.push(args.next().expect("--only needs a scenario name")),
            "--check" => check = Some(PathBuf::from(args.next().expect("--check needs a path"))),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a percentage");
            }
            "--gate-disabled-overhead" => {
                gate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--gate-disabled-overhead needs a percentage"),
                );
            }
            "--gate-durable-overhead" => {
                durable_gate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--gate-durable-overhead needs a percentage"),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: step_loop [--quick] [--out PATH] [--only NAME]... \
                     [--check BASELINE.json [--tolerance PCT]] \
                     [--gate-disabled-overhead PCT] [--gate-durable-overhead PCT]"
                );
                std::process::exit(2);
            }
        }
    }
    // The gates judge specific scenarios; a filtered run that
    // requested a gate must include its scenario.
    if gate.is_some() && !only.is_empty() && !only.iter().any(|n| n == "telemetry_off") {
        only.push("telemetry_off".into());
    }
    if durable_gate.is_some()
        && !only.is_empty()
        && !only.iter().any(|n| n == "fleet_sweep_durable")
    {
        only.push("fleet_sweep_durable".into());
    }
    let run = |name: &str| only.is_empty() || only.iter().any(|n| n == name);
    let out = out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_step_loop.json")
    });
    let reps = if quick { 2 } else { 3 };
    let mut scenarios = Vec::new();

    // Idle-heavy: quantum polling across an empty controller. The
    // memoized scan answers each poll in O(1).
    let idle_cycles: u64 = if quick { 200_000 } else { 2_000_000 };
    if run("idle_poll") {
        let steps_fast = idle_poll(idle_cycles, true);
        assert_eq!(
            steps_fast,
            idle_poll(idle_cycles, false),
            "drivers disagree on idle step count"
        );
        // Construction is excluded from the timed region: a fresh
        // controller is built per rep, then only the poll loop is timed.
        let time_idle = |fast: bool| {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let mut mc = idle_mc();
                let t = Instant::now();
                idle_poll_on(&mut mc, idle_cycles, fast);
                best = best.min(t.elapsed().as_secs_f64());
            }
            best
        };
        let reference = time_idle(false);
        let fast = time_idle(true);
        eprintln!(
            "idle_poll: {idle_cycles} cycles ({} polls), ref {reference:.3}s fast {fast:.3}s ({:.1}x)",
            idle_cycles / IDLE_QUANTUM,
            reference / fast
        );
        scenarios.push(scenario(
            "idle_poll",
            "cycles",
            idle_cycles,
            reference,
            fast,
        ));
    }

    // T1 defense-matrix cell set: every mitigation cell driven through
    // an identical hammer + benign script.
    let catalog = t1_defense_catalog();
    let cells = catalog.len() as u64;
    if run("t1_defense_matrix") {
        for (name, mitigation, trr) in &catalog {
            let a = drive_t1_cell(*mitigation, *trr, true, quick);
            let b = drive_t1_cell(*mitigation, *trr, false, quick);
            assert_eq!(a, b, "cell {name} diverged between drivers");
        }
        let reference = time_best(reps, || {
            for (_, m, trr) in &catalog {
                drive_t1_cell(*m, *trr, false, quick);
            }
        });
        let fast = time_best(reps, || {
            for (_, m, trr) in &catalog {
                drive_t1_cell(*m, *trr, true, quick);
            }
        });
        eprintln!(
            "t1_defense_matrix: {cells} cells, ref {reference:.3}s fast {fast:.3}s ({:.1}x)",
            reference / fast
        );
        scenarios.push(scenario(
            "t1_defense_matrix",
            "cells",
            cells,
            reference,
            fast,
        ));
    }

    // Controller-level hammer bursts: the event wheel vs the reference
    // linear scan on a server-geometry rank under closed-page ACT
    // pressure. Work unit is completed requests (48 per burst).
    let wheel_bursts: u64 = if quick { 40 } else { 400 };
    if run("hammer_burst_wheel") {
        let a = hammer_burst_wheel(wheel_bursts.min(20), true);
        let b = hammer_burst_wheel(wheel_bursts.min(20), false);
        assert_eq!(a, b, "wheel diverged from reference on the burst script");
        let reference = time_best(reps, || {
            hammer_burst_wheel(wheel_bursts, false);
        });
        let fast = time_best(reps, || {
            hammer_burst_wheel(wheel_bursts, true);
        });
        eprintln!(
            "hammer_burst_wheel: {wheel_bursts} bursts, ref {reference:.3}s wheel {fast:.3}s ({:.1}x)",
            reference / fast
        );
        scenarios.push(scenario(
            "hammer_burst_wheel",
            "requests",
            wheel_bursts * 48,
            reference,
            fast,
        ));
    }

    // Epoch-checkpoint resume: reproduce the end state of a multi-
    // window run by re-simulating from cycle zero (baseline) vs
    // restoring the last epoch checkpoint and replaying only the tail
    // (optimized). Work unit is the timeline length reproduced.
    let resume_windows: u64 = if quick { 12 } else { 60 };
    if run("checkpoint_resume") {
        let (mut m, end) = resume_setup(resume_windows);
        let original = resume_digest(&mut m);
        assert_eq!(
            original,
            replay_from_scratch(end),
            "scratch replay diverged from the original timeline"
        );
        assert_eq!(
            original,
            replay_from_checkpoint(&mut m, end),
            "checkpoint replay diverged from the original timeline"
        );
        let reference = time_best(reps, || {
            replay_from_scratch(end);
        });
        let fast = time_best(reps, || {
            replay_from_checkpoint(&mut m, end);
        });
        eprintln!(
            "checkpoint_resume: {end} cycles reproduced, scratch {reference:.3}s resume {fast:.3}s ({:.1}x)",
            reference / fast
        );
        scenarios.push(scenario(
            "checkpoint_resume",
            "cycles",
            end,
            reference,
            fast,
        ));
    }

    // Device-level hammer burst: batched vs per-ACT disturbance. The
    // full-mode burst is sized so the timed region is tens of
    // milliseconds — post-refactor the device clears 200k ACTs in a
    // few ms, within scheduler-tick noise. Throughput comparisons are
    // work-normalized, so resizing the burst keeps old baselines
    // comparable.
    let acts: u32 = if quick { 20_000 } else { 2_000_000 };
    if run("hammer_burst") {
        assert_eq!(
            hammer_burst(acts.min(2_000), false),
            hammer_burst(acts.min(2_000), true),
            "batched flip count diverged"
        );
        let reference = time_best(reps, || {
            hammer_burst(acts, false);
        });
        let fast = time_best(reps, || {
            hammer_burst(acts, true);
        });
        eprintln!(
            "hammer_burst: {acts} ACTs, per-ACT {reference:.3}s batched {fast:.3}s ({:.1}x)",
            reference / fast
        );
        scenarios.push(scenario(
            "hammer_burst",
            "acts",
            acts as u64,
            reference,
            fast,
        ));
    }

    // Tracing overhead on the same burst: baseline records every
    // command and flip into a buffer sink, optimized leaves the
    // tracer disabled (the production default).
    if run("hammer_burst_traced") {
        assert_eq!(
            hammer_burst_with_tracer(acts.min(2_000), true, Some(Tracer::buffer())),
            hammer_burst(acts.min(2_000), true),
            "traced flip count diverged"
        );
        let traced = time_best(reps, || {
            hammer_burst_with_tracer(acts, true, Some(Tracer::buffer()));
        });
        let untraced = time_best(reps, || {
            hammer_burst(acts, true);
        });
        eprintln!(
            "hammer_burst_traced: {acts} ACTs, tracing on {traced:.3}s off {untraced:.3}s ({:.1}x overhead)",
            traced / untraced
        );
        scenarios.push(scenario(
            "hammer_burst_traced",
            "acts",
            acts as u64,
            traced,
            untraced,
        ));
    }

    // Shadow-checker overhead on the T1 cell set: baseline replays
    // every issued command through the live invariant engine, the
    // optimized side leaves the checker detached (the production
    // default — one `is_none()` check per issue). Reported for the
    // perf trajectory; the CI gate below covers the disabled path.
    if run("t1_shadow_checked") {
        {
            let shadow = ShadowChecker::new();
            let shadowed = drive_t1_cell_shadowed(
                catalog[0].1,
                catalog[0].2,
                true,
                quick,
                Some(shadow.clone()),
            );
            assert_eq!(
                shadowed,
                drive_t1_cell(catalog[0].1, catalog[0].2, true, quick),
                "shadow checker perturbed the T1 cell"
            );
            shadow.finish(shadowed.0);
            assert!(
                shadow.violations().is_empty(),
                "T1 cell command stream violated protocol invariants"
            );
        }
        let checked = time_best(reps, || {
            for (_, m, trr) in &catalog {
                drive_t1_cell_shadowed(*m, *trr, true, quick, Some(ShadowChecker::new()));
            }
        });
        let unchecked = time_best(reps, || {
            for (_, m, trr) in &catalog {
                drive_t1_cell(*m, *trr, true, quick);
            }
        });
        eprintln!(
            "t1_shadow_checked: {cells} cells, shadow on {checked:.3}s off {unchecked:.3}s ({:.1}x overhead)",
            checked / unchecked
        );
        scenarios.push(scenario(
            "t1_shadow_checked",
            "cells",
            cells,
            checked,
            unchecked,
        ));
    }

    // Zero-cost-when-off gate: the telemetry-disabled issue path (one
    // `is_none()` check) against the same burst with the check
    // compiled out. Reps are interleaved so frequency drift hits both
    // sides equally — unlike a cross-run absolute-throughput
    // comparison, this ratio is stable on a noisy machine.
    let mut off_overhead_pct: Option<f64> = None;
    if run("telemetry_off") {
        assert_eq!(
            hammer_burst_bypassing_tracer(acts.min(2_000), true),
            hammer_burst(acts.min(2_000), true),
            "bypass flip count diverged"
        );
        // Each rep times both sides back-to-back (alternating order)
        // and contributes one paired ratio; the median ratio is what
        // the gate judges. A longer burst than the timing scenarios
        // keeps the timed region well above scheduler-tick noise.
        let gate_acts = acts.saturating_mul(4);
        let mut disabled = f64::INFINITY;
        let mut absent = f64::INFINITY;
        let mut ratios = Vec::new();
        for rep in 0..9 {
            let (d, a) = if rep % 2 == 0 {
                let t = Instant::now();
                hammer_burst(gate_acts, true);
                let d = t.elapsed().as_secs_f64();
                let t = Instant::now();
                hammer_burst_bypassing_tracer(gate_acts, true);
                (d, t.elapsed().as_secs_f64())
            } else {
                let t = Instant::now();
                hammer_burst_bypassing_tracer(gate_acts, true);
                let a = t.elapsed().as_secs_f64();
                let t = Instant::now();
                hammer_burst(gate_acts, true);
                (t.elapsed().as_secs_f64(), a)
            };
            disabled = disabled.min(d);
            absent = absent.min(a);
            ratios.push(d / a);
        }
        ratios.sort_by(f64::total_cmp);
        let median_pct = 100.0 * (ratios[ratios.len() / 2] - 1.0);
        off_overhead_pct = Some(median_pct);
        eprintln!(
            "telemetry_off: {gate_acts} ACTs x9, disabled path best {disabled:.3}s, \
             check compiled out best {absent:.3}s (median {median_pct:+.2}% overhead)"
        );
        scenarios.push(scenario(
            "telemetry_off",
            "acts",
            gate_acts as u64,
            disabled,
            absent,
        ));
    }

    // Fleet sweep: the sharded multi-machine runner against the serial
    // loop over one deterministic heterogeneous population. On a single
    // hardware thread the sharded side prices the sharding machinery's
    // overhead rather than showing a speedup; either way the
    // cross-check holds the fleet determinism contract (byte-identical
    // reports) before any timing is trusted.
    let fleet_machines: u32 = if quick { 48 } else { 192 };
    if run("fleet_sweep") {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        let serial = fleet_sweep(fleet_machines.min(12), 1);
        let sharded = fleet_sweep(fleet_machines.min(12), jobs);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "sharded fleet diverged from the serial loop"
        );
        let reference = time_best(reps, || {
            fleet_sweep(fleet_machines, 1);
        });
        let fast = time_best(reps, || {
            fleet_sweep(fleet_machines, jobs);
        });
        eprintln!(
            "fleet_sweep: {fleet_machines} machines, serial {reference:.3}s sharded x{jobs} {fast:.3}s ({:.1}x)",
            reference / fast
        );
        scenarios.push(scenario(
            "fleet_sweep",
            "machines",
            fleet_machines as u64,
            reference,
            fast,
        ));
    }

    // Durable-journal overhead: the same sweep with the epoch journal
    // attached against the plain sweep. Reps are interleaved and the
    // median paired ratio is what `--gate-durable-overhead` judges —
    // the `--durable` flag must stay nearly free (the journal writes
    // one postings record + commit marker per epoch, not state).
    let mut durable_overhead_pct: Option<f64> = None;
    if run("fleet_sweep_durable") {
        let dir = std::env::temp_dir().join(format!("ht-bench-durable-{}", std::process::id()));
        let plain_ref = fleet_sweep(fleet_machines.min(12), 1);
        let durable_ref = fleet_sweep_durable(fleet_machines.min(12), 1, &dir);
        assert_eq!(
            serde_json::to_string(&plain_ref).unwrap(),
            serde_json::to_string(&durable_ref).unwrap(),
            "durable fleet run diverged from the plain run"
        );
        // A larger population than the timing sweep keeps each timed
        // region well above fsync/scheduler-tick noise: the journal
        // cost is per *epoch* (a postings record plus commit marker),
        // so it shrinks relative to simulation as machines grow.
        let gate_machines = fleet_machines * 2;
        let mut plain = f64::INFINITY;
        let mut durable = f64::INFINITY;
        let mut ratios = Vec::new();
        for rep in 0..9 {
            let (d, p) = if rep % 2 == 0 {
                let t = Instant::now();
                fleet_sweep_durable(gate_machines, 1, &dir);
                let d = t.elapsed().as_secs_f64();
                let t = Instant::now();
                fleet_sweep(gate_machines, 1);
                (d, t.elapsed().as_secs_f64())
            } else {
                let t = Instant::now();
                fleet_sweep(gate_machines, 1);
                let p = t.elapsed().as_secs_f64();
                let t = Instant::now();
                fleet_sweep_durable(gate_machines, 1, &dir);
                (t.elapsed().as_secs_f64(), p)
            };
            durable = durable.min(d);
            plain = plain.min(p);
            ratios.push(d / p);
        }
        let _ = std::fs::remove_dir_all(&dir);
        ratios.sort_by(f64::total_cmp);
        let median_pct = 100.0 * (ratios[ratios.len() / 2] - 1.0);
        durable_overhead_pct = Some(median_pct);
        eprintln!(
            "fleet_sweep_durable: {gate_machines} machines x9, journal on best {durable:.3}s, \
             off best {plain:.3}s (median {median_pct:+.2}% overhead)"
        );
        scenarios.push(scenario(
            "fleet_sweep_durable",
            "machines",
            gate_machines as u64,
            durable,
            plain,
        ));
    }

    let report = Report {
        bench: "step_loop".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        scenarios,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write bench json");
    eprintln!("wrote {}", out.display());

    if let Some(pct) = gate {
        let measured = off_overhead_pct.expect("gate forces the telemetry_off scenario");
        if measured > pct {
            eprintln!("gate FAILED: disabled-telemetry overhead {measured:+.2}% exceeds {pct}%");
            std::process::exit(1);
        }
        eprintln!("gate passed: disabled-telemetry overhead {measured:+.2}% within {pct}%");
    }

    if let Some(pct) = durable_gate {
        let measured = durable_overhead_pct.expect("gate forces the fleet_sweep_durable scenario");
        if measured > pct {
            eprintln!("gate FAILED: durable-journal overhead {measured:+.2}% exceeds {pct}%");
            std::process::exit(1);
        }
        eprintln!("gate passed: durable-journal overhead {measured:+.2}% within {pct}%");
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path).expect("read check baseline");
        let baseline: Report = serde_json::from_str(&text).expect("parse check baseline");
        if baseline.mode != report.mode {
            eprintln!(
                "check: mode mismatch (this run: {}, baseline: {}) — throughput is work-normalized, comparing anyway",
                report.mode, baseline.mode
            );
        }
        let failures = check_against(&report, &baseline, tolerance);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
        eprintln!("check passed against {}", path.display());
    }
}
