//! Shared step-loop benchmark scenarios.
//!
//! Both the criterion family (`benches/step_loop.rs`) and the
//! `step_loop` runner binary (which seeds `BENCH_step_loop.json`)
//! drive these exact workloads, so the numbers they report describe
//! the same code paths: the memoized fast scheduler vs. the reference
//! linear scan, and batched vs. per-ACT disturbance accounting.

use hammertime::machine::{Machine, MachineConfig};
use hammertime::taxonomy::DefenseKind;
use hammertime_check::ShadowChecker;
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, Cycle, DetRng, DomainId, Geometry, RequestSource};
use hammertime_dram::{DramConfig, DramModule, TimingParams, TrrConfig};
use hammertime_fleet::{run_fleet, run_fleet_durable, FleetConfig, FleetReport, RunControl};
use hammertime_memctrl::request::{MemRequest, RequestKind};
use hammertime_memctrl::{McMitigationConfig, MemCtrl, MemCtrlConfig, PagePolicy};
use hammertime_telemetry::Tracer;
use hammertime_workloads::StreamWorkload;

/// Polling quantum for the idle scenario: mirrors how `Machine::run`
/// nudges the controller forward in small time slices.
pub const IDLE_QUANTUM: u64 = 200;

/// Idle-heavy scenario: a server-geometry controller with refresh on
/// and an empty queue, polled forward in [`IDLE_QUANTUM`]-cycle slices
/// for `cycles` cycles. The fast path answers each poll from the
/// memoized scan in O(1); the reference rescans every refresh
/// scheduler per poll. Returns `sched_steps` so callers can assert
/// both drivers took the same number of scheduling decisions.
pub fn idle_poll(cycles: u64, fast: bool) -> u64 {
    idle_poll_on(&mut idle_mc(), cycles, fast)
}

/// Builds the idle-scenario controller; separated from the poll loop
/// so timed runs exclude construction (a server-geometry build
/// allocates per-row state for 32 banks x 4096 rows).
pub fn idle_mc() -> MemCtrl {
    let mut dram_cfg = DramConfig::test_config(1_000_000);
    dram_cfg.geometry = Geometry::server();
    // Realistic refresh cadence: with tiny_test timing (tREFI = 100)
    // every poll lands on a refresh slot and both drivers degenerate
    // to the same scan-per-step; DDR4 spacing leaves genuinely idle
    // stretches for the memoized scan to skip.
    dram_cfg.timing = TimingParams::ddr4_2400();
    MemCtrl::new(MemCtrlConfig::baseline(), dram_cfg, 42).unwrap()
}

/// The poll loop of [`idle_poll`], driving an already-built controller.
pub fn idle_poll_on(mc: &mut MemCtrl, cycles: u64, fast: bool) -> u64 {
    let end = mc.now().raw() + cycles;
    let mut target = mc.now().raw();
    while target < end {
        target = (target + IDLE_QUANTUM).min(end);
        if fast {
            mc.advance_to(Cycle(target));
        } else {
            mc.advance_to_reference(Cycle(target));
        }
    }
    mc.stats().sched_steps
}

/// Single-row hammer burst at the device level: `acts` ACT/PRE pairs
/// on one aggressor, then a sync. With `batched` accounting the burst
/// costs O(1) log entries; per-ACT walks the blast radius every time.
/// Returns the flip count (identical across modes by construction).
pub fn hammer_burst(acts: u32, batched: bool) -> u64 {
    hammer_burst_with_tracer(acts, batched, None)
}

/// [`hammer_burst`] with an optional tracer attached to the device —
/// the scenario behind the tracing-overhead comparison: `None` takes
/// the one-`is_none()`-check disabled path, `Some` pays for full
/// command/flip recording.
pub fn hammer_burst_with_tracer(acts: u32, batched: bool, tracer: Option<Tracer>) -> u64 {
    hammer_burst_impl(acts, batched, tracer, false)
}

/// [`hammer_burst`] issued through the tracer-check bypass — the
/// "telemetry layer absent" baseline the zero-cost-when-off bench
/// gate compares the disabled path against.
pub fn hammer_burst_bypassing_tracer(acts: u32, batched: bool) -> u64 {
    hammer_burst_impl(acts, batched, None, true)
}

fn hammer_burst_impl(acts: u32, batched: bool, tracer: Option<Tracer>, bypass: bool) -> u64 {
    let mut cfg = DramConfig::test_config(1_000_000);
    // A wide blast radius is where the batching matters: per-ACT
    // accounting walks 2 x radius victims on every activation, the
    // batched log walks them once per run at the sync.
    cfg.disturbance.blast_radius = 6;
    cfg.batched_pressure = batched;
    cfg.tracer = tracer;
    let mut m = DramModule::new(cfg).unwrap();
    let bank = BankId {
        channel: 0,
        rank: 0,
        bank_group: 0,
        bank: 0,
    };
    // The burst entry point is state-identical to issuing the ACT/PRE
    // pairs one command at a time (the device enforces this in its
    // tests) but keeps the timing recurrence in registers — the
    // hammer loop is a pure measure of device-model throughput, so it
    // uses the fastest correct driving idiom. On a traced device it
    // degrades to per-command issue internally, so the tracing
    // scenarios still record every command.
    let now = if bypass {
        m.issue_hammer_pairs_bypassing_tracer(&bank, 8, acts, Cycle::ZERO)
            .unwrap()
    } else {
        m.issue_hammer_pairs(&bank, 8, acts, Cycle::ZERO).unwrap()
    };
    m.sync_disturbances(now);
    m.stats().flips
}

/// Controller-level hammer burst: `bursts` rounds of a double-sided
/// hammer pair plus row-conflict traffic scattered over a server-rank
/// worth of banks, each round drained to empty. The event wheel
/// reprices only the banks each issue dirties; the reference scan
/// re-walks the whole queue per decision. Returns `(final cycle,
/// completions)` — identical for both drivers, which is how callers
/// cross-check before trusting the timings.
pub fn hammer_burst_wheel(bursts: u64, fast: bool) -> (Cycle, usize) {
    let mut cfg = MemCtrlConfig::baseline();
    // Closed-page: every access pays a fresh ACT, so the scheduler
    // decides per-command instead of streaming row hits.
    cfg.page_policy = PagePolicy::Closed;
    let mut dram_cfg = DramConfig::test_config(1_000_000);
    dram_cfg.geometry = Geometry::server();
    dram_cfg.timing = TimingParams::ddr4_2400();
    let mut mc = MemCtrl::new(cfg, dram_cfg, 42).unwrap();
    let total_lines = mc.map().geometry().total_lines();
    let mut rng = DetRng::new(13);
    let mut id = 0u64;
    let mut completions = 0usize;
    for _ in 0..bursts {
        for i in 0..48u64 {
            // Half the burst hammers one double-sided pair; the rest
            // scatters across banks so many wheel slots hold work.
            let line = if i % 2 == 0 {
                CacheLineAddr((8 + 2 * (i % 4)) % total_lines)
            } else {
                CacheLineAddr(rng.below(total_lines))
            };
            let _ = mc.submit(MemRequest {
                id,
                line,
                kind: RequestKind::Read,
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival: mc.now(),
            });
            id += 1;
        }
        if fast {
            mc.drain();
        } else {
            mc.drain_reference();
        }
        completions += mc.drain_completions().len();
    }
    (mc.now(), completions)
}

/// Builds the checkpoint-resume machine: epoch checkpoints on, one
/// streaming tenant that never finishes, run for `windows` refresh
/// windows plus half a window of tail. Returns the machine (holding
/// its last epoch checkpoint) and the end cycle it reached.
pub fn resume_setup(windows: u64) -> (Machine, u64) {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
    cfg.epoch_checkpoints = true;
    let t_refw = cfg.timing.t_refw;
    // End mid-window so the replayed tail is genuinely shorter than
    // the full timeline (a run ending exactly on a boundary would
    // leave the checkpoint at the end and nothing to replay).
    let end = windows * t_refw + t_refw / 2;
    let mut m = Machine::new(cfg).unwrap();
    let d = DomainId(1);
    let arena = m.add_tenant(d, 4).unwrap();
    m.set_workload(d, Box::new(StreamWorkload::new(arena, u64::MAX / 2, 0)))
        .unwrap();
    m.run(end);
    (m, end)
}

/// End-state digest for the resume scenario cross-checks.
pub fn resume_digest(m: &mut Machine) -> (u64, u64, u64) {
    let r = m.report();
    (r.cycles, r.dram.acts, r.mc.demand_completed())
}

/// Reproduces the end state of `resume_setup` by rewinding to the last
/// epoch checkpoint and replaying only the tail — the optimized side
/// of the `checkpoint_resume` scenario. Leaves the machine back at the
/// end state (and the checkpoint in place), so the call is repeatable.
pub fn replay_from_checkpoint(m: &mut Machine, end: u64) -> (u64, u64, u64) {
    let at = m
        .restore_last_checkpoint()
        .expect("epoch checkpoints enabled")
        .raw();
    m.run(end - at);
    resume_digest(m)
}

/// Fleet-sweep scenario: one deterministic quick-mode population of
/// `machines` heterogeneous machines driven through the fleet runner
/// with `jobs` workers. The baseline side is the serial loop
/// (`jobs = 1`), the optimized side the sharded runner; the two are
/// byte-identical by the fleet determinism contract, which callers
/// cross-check before trusting the timings. Per-machine depth stays
/// quick — the sweep scales the *population*, the axis fleet mode
/// adds.
pub fn fleet_sweep(machines: u32, jobs: usize) -> FleetReport {
    let mut cfg = FleetConfig::new(machines).jobs(jobs);
    cfg.quick = true;
    run_fleet(&cfg).expect("fleet sweep runs")
}

/// [`fleet_sweep`] with the epoch journal attached: the same
/// population run through `run_fleet_durable` into a fresh `dir`.
/// This is the durable side of the `fleet_sweep_durable` scenario;
/// its ratio against the plain sweep is what the `--gate-durable-
/// overhead` CI gate judges (the journal must stay cheap relative to
/// simulation).
pub fn fleet_sweep_durable(machines: u32, jobs: usize, dir: &std::path::Path) -> FleetReport {
    let mut cfg = FleetConfig::new(machines).jobs(jobs);
    cfg.quick = true;
    let _ = std::fs::remove_dir_all(dir);
    let (report, completed) =
        run_fleet_durable(&cfg, dir, &RunControl::default()).expect("durable fleet sweep runs");
    assert!(completed, "durable sweep must run to completion");
    report
}

/// Reproduces the same end state the slow way: a fresh machine
/// re-simulating the whole timeline from cycle zero — the baseline
/// side of the `checkpoint_resume` scenario (construction excluded;
/// callers build the machine outside the timed region via
/// [`resume_setup`] semantics).
pub fn replay_from_scratch(end: u64) -> (u64, u64, u64) {
    let mut cfg = MachineConfig::fast(DefenseKind::None, 1_000_000);
    cfg.epoch_checkpoints = true;
    let mut m = Machine::new(cfg).unwrap();
    let d = DomainId(1);
    let arena = m.add_tenant(d, 4).unwrap();
    m.set_workload(d, Box::new(StreamWorkload::new(arena, u64::MAX / 2, 0)))
        .unwrap();
    m.run(end);
    resume_digest(&mut m)
}
/// per hardware mitigation the paper's Table 1 compares (plus the
/// in-DRAM TRR baseline, expressed through the device config).
pub fn t1_defense_catalog() -> Vec<(&'static str, McMitigationConfig, bool)> {
    vec![
        ("none", McMitigationConfig::None, false),
        ("trr", McMitigationConfig::None, true),
        (
            "para",
            McMitigationConfig::Para {
                prob: 0.3,
                radius: 1,
            },
            false,
        ),
        (
            "graphene",
            McMitigationConfig::Graphene {
                table_size: 4,
                threshold: 12,
                radius: 1,
            },
            false,
        ),
        (
            "blockhammer",
            McMitigationConfig::BlockHammer {
                cbf_counters: 32,
                hashes: 2,
                threshold: 12,
                delay: 60,
                epoch: 20_000,
            },
            false,
        ),
        (
            "twice_lite",
            McMitigationConfig::TwiceLite {
                table_size: 4,
                threshold: 12,
                radius: 1,
                prune_interval: 10_000,
            },
            false,
        ),
    ]
}

/// Drives one T1-style cell: a double-sided hammer interleaved with
/// scattered benign traffic and quantum polling, under the given
/// mitigation. Returns `(final cycle, completions)` — identical for
/// the fast and reference drivers, which is how the runner
/// cross-checks itself before trusting the timings.
pub fn drive_t1_cell(
    mitigation: McMitigationConfig,
    trr: bool,
    fast: bool,
    quick: bool,
) -> (Cycle, usize) {
    drive_t1_cell_shadowed(mitigation, trr, fast, quick, None)
}

/// [`drive_t1_cell`] with an optional live protocol shadow checker
/// attached to the controller — the scenario behind the
/// shadow-overhead comparison: `None` takes the one-`is_none()`-check
/// disabled path, `Some` replays every issued command through the full
/// invariant engine.
pub fn drive_t1_cell_shadowed(
    mitigation: McMitigationConfig,
    trr: bool,
    fast: bool,
    quick: bool,
    shadow: Option<ShadowChecker>,
) -> (Cycle, usize) {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.mitigation = mitigation;
    cfg.page_policy = PagePolicy::Closed;
    cfg.shadow = shadow;
    // Medium geometry with DDR4 timing: enough banks that the fast
    // path's bank-level pruning has something to prune, and a
    // realistic refresh cadence so the gaps between bursts are
    // genuinely idle (tiny_test's tREFI = 100 would put a refresh in
    // every poll and mask the memoized scan entirely).
    let mut dram_cfg = DramConfig::test_config(24);
    dram_cfg.geometry = Geometry::medium();
    dram_cfg.timing = TimingParams::ddr4_2400();
    if trr {
        dram_cfg.trr = Some(TrrConfig::vendor_default());
    }
    let mut mc = MemCtrl::new(cfg, dram_cfg, 42).unwrap();
    let total_lines = mc.map().geometry().total_lines();
    let bursts = if quick { 24 } else { 96 };
    let mut rng = DetRng::new(7);
    let mut id = 0u64;
    for _ in 0..bursts {
        // A burst of demand: the double-sided hammer pair plus
        // scattered benign traffic, like a machine quantum where the
        // attacker and victims both run.
        for i in 0..16u64 {
            let line = if i % 4 == 3 {
                CacheLineAddr(rng.below(total_lines))
            } else {
                CacheLineAddr((8 + 2 * (i % 2)) % total_lines)
            };
            let kind = if i % 5 == 0 {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            let _ = mc.submit(MemRequest {
                id,
                line,
                kind,
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival: mc.now(),
            });
            id += 1;
        }
        // Then the machine's quantum polling: fixed 200-cycle slices,
        // most of which find nothing to issue once the burst drains.
        for _ in 0..40 {
            let target = Cycle(mc.now().raw() + 200);
            if fast {
                mc.advance_to(target);
            } else {
                mc.advance_to_reference(target);
            }
        }
    }
    if fast {
        mc.drain();
    } else {
        mc.drain_reference();
    }
    (mc.now(), mc.drain_completions().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_poll_drivers_agree_on_step_count() {
        assert_eq!(idle_poll(20_000, true), idle_poll(20_000, false));
    }

    #[test]
    fn hammer_burst_flip_counts_agree() {
        assert_eq!(hammer_burst(500, false), hammer_burst(500, true));
    }

    #[test]
    fn traced_hammer_burst_flip_count_matches_untraced() {
        let tracer = Tracer::buffer();
        let traced = hammer_burst_with_tracer(500, true, Some(tracer.clone()));
        assert_eq!(traced, hammer_burst(500, true));
        // The trace saw every ACT/PRE pair plus the recorded flips.
        let records = tracer.take_records();
        assert!(records.len() as u64 >= 1000 + traced);
    }

    #[test]
    fn bypass_hammer_burst_flip_count_matches_issue_path() {
        assert_eq!(
            hammer_burst_bypassing_tracer(500, true),
            hammer_burst(500, true)
        );
    }

    #[test]
    fn shadowed_t1_cell_matches_unshadowed_and_is_clean() {
        let shadow = ShadowChecker::new();
        let shadowed = drive_t1_cell_shadowed(
            McMitigationConfig::None,
            false,
            true,
            true,
            Some(shadow.clone()),
        );
        assert_eq!(
            shadowed,
            drive_t1_cell(McMitigationConfig::None, false, true, true)
        );
        shadow.finish(shadowed.0);
        assert!(shadow.commands_checked() > 0);
        assert!(shadow.violations().is_empty(), "live stream not clean");
    }

    #[test]
    fn hammer_burst_wheel_drivers_agree() {
        assert_eq!(hammer_burst_wheel(6, true), hammer_burst_wheel(6, false));
    }

    #[test]
    fn checkpoint_resume_reproduces_end_state() {
        let (mut m, end) = resume_setup(3);
        let original = resume_digest(&mut m);
        assert_eq!(
            original,
            replay_from_scratch(end),
            "scratch replay diverged"
        );
        assert_eq!(
            original,
            replay_from_checkpoint(&mut m, end),
            "checkpoint replay diverged"
        );
        // Repeatable: the checkpoint survives the first replay.
        assert_eq!(original, replay_from_checkpoint(&mut m, end));
    }

    #[test]
    fn fleet_sweep_reports_agree_across_jobs() {
        let serial = fleet_sweep(8, 1);
        let sharded = fleet_sweep(8, 4);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&sharded).unwrap(),
            "sharded fleet diverged from the serial loop"
        );
    }

    #[test]
    fn t1_cells_drivers_agree() {
        for (name, mitigation, trr) in t1_defense_catalog() {
            let fast = drive_t1_cell(mitigation, trr, true, true);
            let reference = drive_t1_cell(mitigation, trr, false, true);
            assert_eq!(fast, reference, "cell {name} diverged");
        }
    }
}
