//! Shared step-loop benchmark scenarios.
//!
//! Both the criterion family (`benches/step_loop.rs`) and the
//! `step_loop` runner binary (which seeds `BENCH_step_loop.json`)
//! drive these exact workloads, so the numbers they report describe
//! the same code paths: the memoized fast scheduler vs. the reference
//! linear scan, and batched vs. per-ACT disturbance accounting.

use hammertime_check::ShadowChecker;
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, Cycle, DetRng, DomainId, Geometry, RequestSource};
use hammertime_dram::{DdrCommand, DramConfig, DramModule, TimingParams, TrrConfig};
use hammertime_memctrl::request::{MemRequest, RequestKind};
use hammertime_memctrl::{McMitigationConfig, MemCtrl, MemCtrlConfig, PagePolicy};
use hammertime_telemetry::Tracer;

/// Polling quantum for the idle scenario: mirrors how `Machine::run`
/// nudges the controller forward in small time slices.
pub const IDLE_QUANTUM: u64 = 200;

/// Idle-heavy scenario: a server-geometry controller with refresh on
/// and an empty queue, polled forward in [`IDLE_QUANTUM`]-cycle slices
/// for `cycles` cycles. The fast path answers each poll from the
/// memoized scan in O(1); the reference rescans every refresh
/// scheduler per poll. Returns `sched_steps` so callers can assert
/// both drivers took the same number of scheduling decisions.
pub fn idle_poll(cycles: u64, fast: bool) -> u64 {
    idle_poll_on(&mut idle_mc(), cycles, fast)
}

/// Builds the idle-scenario controller; separated from the poll loop
/// so timed runs exclude construction (a server-geometry build
/// allocates per-row state for 32 banks x 4096 rows).
pub fn idle_mc() -> MemCtrl {
    let mut dram_cfg = DramConfig::test_config(1_000_000);
    dram_cfg.geometry = Geometry::server();
    // Realistic refresh cadence: with tiny_test timing (tREFI = 100)
    // every poll lands on a refresh slot and both drivers degenerate
    // to the same scan-per-step; DDR4 spacing leaves genuinely idle
    // stretches for the memoized scan to skip.
    dram_cfg.timing = TimingParams::ddr4_2400();
    MemCtrl::new(MemCtrlConfig::baseline(), dram_cfg, 42).unwrap()
}

/// The poll loop of [`idle_poll`], driving an already-built controller.
pub fn idle_poll_on(mc: &mut MemCtrl, cycles: u64, fast: bool) -> u64 {
    let end = mc.now().raw() + cycles;
    let mut target = mc.now().raw();
    while target < end {
        target = (target + IDLE_QUANTUM).min(end);
        if fast {
            mc.advance_to(Cycle(target));
        } else {
            mc.advance_to_reference(Cycle(target));
        }
    }
    mc.stats().sched_steps
}

/// Single-row hammer burst at the device level: `acts` ACT/PRE pairs
/// on one aggressor, then a sync. With `batched` accounting the burst
/// costs O(1) log entries; per-ACT walks the blast radius every time.
/// Returns the flip count (identical across modes by construction).
pub fn hammer_burst(acts: u32, batched: bool) -> u64 {
    hammer_burst_with_tracer(acts, batched, None)
}

/// [`hammer_burst`] with an optional tracer attached to the device —
/// the scenario behind the tracing-overhead comparison: `None` takes
/// the one-`is_none()`-check disabled path, `Some` pays for full
/// command/flip recording.
pub fn hammer_burst_with_tracer(acts: u32, batched: bool, tracer: Option<Tracer>) -> u64 {
    hammer_burst_impl(acts, batched, tracer, false)
}

/// [`hammer_burst`] issued through the tracer-check bypass — the
/// "telemetry layer absent" baseline the zero-cost-when-off bench
/// gate compares the disabled path against.
pub fn hammer_burst_bypassing_tracer(acts: u32, batched: bool) -> u64 {
    hammer_burst_impl(acts, batched, None, true)
}

fn hammer_burst_impl(acts: u32, batched: bool, tracer: Option<Tracer>, bypass: bool) -> u64 {
    let mut cfg = DramConfig::test_config(1_000_000);
    // A wide blast radius is where the batching matters: per-ACT
    // accounting walks 2 x radius victims on every activation, the
    // batched log walks them once per run at the sync.
    cfg.disturbance.blast_radius = 6;
    cfg.batched_pressure = batched;
    cfg.tracer = tracer;
    let mut m = DramModule::new(cfg).unwrap();
    let bank = BankId {
        channel: 0,
        rank: 0,
        bank_group: 0,
        bank: 0,
    };
    let mut now = Cycle::ZERO;
    if bypass {
        for _ in 0..acts {
            let act = DdrCommand::Act { bank, row: 8 };
            now = now.max(m.earliest(&act));
            m.issue_bypassing_tracer(&act, now).unwrap();
            let pre = DdrCommand::Pre { bank };
            now = now.max(m.earliest(&pre));
            m.issue_bypassing_tracer(&pre, now).unwrap();
        }
    } else {
        for _ in 0..acts {
            let act = DdrCommand::Act { bank, row: 8 };
            now = now.max(m.earliest(&act));
            m.issue(&act, now).unwrap();
            let pre = DdrCommand::Pre { bank };
            now = now.max(m.earliest(&pre));
            m.issue(&pre, now).unwrap();
        }
    }
    m.sync_disturbances(now);
    m.stats().flips
}

/// The T1 defense-matrix cell set at the controller level: one entry
/// per hardware mitigation the paper's Table 1 compares (plus the
/// in-DRAM TRR baseline, expressed through the device config).
pub fn t1_defense_catalog() -> Vec<(&'static str, McMitigationConfig, bool)> {
    vec![
        ("none", McMitigationConfig::None, false),
        ("trr", McMitigationConfig::None, true),
        (
            "para",
            McMitigationConfig::Para {
                prob: 0.3,
                radius: 1,
            },
            false,
        ),
        (
            "graphene",
            McMitigationConfig::Graphene {
                table_size: 4,
                threshold: 12,
                radius: 1,
            },
            false,
        ),
        (
            "blockhammer",
            McMitigationConfig::BlockHammer {
                cbf_counters: 32,
                hashes: 2,
                threshold: 12,
                delay: 60,
                epoch: 20_000,
            },
            false,
        ),
        (
            "twice_lite",
            McMitigationConfig::TwiceLite {
                table_size: 4,
                threshold: 12,
                radius: 1,
                prune_interval: 10_000,
            },
            false,
        ),
    ]
}

/// Drives one T1-style cell: a double-sided hammer interleaved with
/// scattered benign traffic and quantum polling, under the given
/// mitigation. Returns `(final cycle, completions)` — identical for
/// the fast and reference drivers, which is how the runner
/// cross-checks itself before trusting the timings.
pub fn drive_t1_cell(
    mitigation: McMitigationConfig,
    trr: bool,
    fast: bool,
    quick: bool,
) -> (Cycle, usize) {
    drive_t1_cell_shadowed(mitigation, trr, fast, quick, None)
}

/// [`drive_t1_cell`] with an optional live protocol shadow checker
/// attached to the controller — the scenario behind the
/// shadow-overhead comparison: `None` takes the one-`is_none()`-check
/// disabled path, `Some` replays every issued command through the full
/// invariant engine.
pub fn drive_t1_cell_shadowed(
    mitigation: McMitigationConfig,
    trr: bool,
    fast: bool,
    quick: bool,
    shadow: Option<ShadowChecker>,
) -> (Cycle, usize) {
    let mut cfg = MemCtrlConfig::baseline();
    cfg.mitigation = mitigation;
    cfg.page_policy = PagePolicy::Closed;
    cfg.shadow = shadow;
    // Medium geometry with DDR4 timing: enough banks that the fast
    // path's bank-level pruning has something to prune, and a
    // realistic refresh cadence so the gaps between bursts are
    // genuinely idle (tiny_test's tREFI = 100 would put a refresh in
    // every poll and mask the memoized scan entirely).
    let mut dram_cfg = DramConfig::test_config(24);
    dram_cfg.geometry = Geometry::medium();
    dram_cfg.timing = TimingParams::ddr4_2400();
    if trr {
        dram_cfg.trr = Some(TrrConfig::vendor_default());
    }
    let mut mc = MemCtrl::new(cfg, dram_cfg, 42).unwrap();
    let total_lines = mc.map().geometry().total_lines();
    let bursts = if quick { 24 } else { 96 };
    let mut rng = DetRng::new(7);
    let mut id = 0u64;
    for _ in 0..bursts {
        // A burst of demand: the double-sided hammer pair plus
        // scattered benign traffic, like a machine quantum where the
        // attacker and victims both run.
        for i in 0..16u64 {
            let line = if i % 4 == 3 {
                CacheLineAddr(rng.below(total_lines))
            } else {
                CacheLineAddr((8 + 2 * (i % 2)) % total_lines)
            };
            let kind = if i % 5 == 0 {
                RequestKind::Write
            } else {
                RequestKind::Read
            };
            let _ = mc.submit(MemRequest {
                id,
                line,
                kind,
                source: RequestSource::Core(0),
                domain: DomainId(1),
                arrival: mc.now(),
            });
            id += 1;
        }
        // Then the machine's quantum polling: fixed 200-cycle slices,
        // most of which find nothing to issue once the burst drains.
        for _ in 0..40 {
            let target = Cycle(mc.now().raw() + 200);
            if fast {
                mc.advance_to(target);
            } else {
                mc.advance_to_reference(target);
            }
        }
    }
    if fast {
        mc.drain();
    } else {
        mc.drain_reference();
    }
    (mc.now(), mc.drain_completions().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_poll_drivers_agree_on_step_count() {
        assert_eq!(idle_poll(20_000, true), idle_poll(20_000, false));
    }

    #[test]
    fn hammer_burst_flip_counts_agree() {
        assert_eq!(hammer_burst(500, false), hammer_burst(500, true));
    }

    #[test]
    fn traced_hammer_burst_flip_count_matches_untraced() {
        let tracer = Tracer::buffer();
        let traced = hammer_burst_with_tracer(500, true, Some(tracer.clone()));
        assert_eq!(traced, hammer_burst(500, true));
        // The trace saw every ACT/PRE pair plus the recorded flips.
        let records = tracer.take_records();
        assert!(records.len() as u64 >= 1000 + traced);
    }

    #[test]
    fn bypass_hammer_burst_flip_count_matches_issue_path() {
        assert_eq!(
            hammer_burst_bypassing_tracer(500, true),
            hammer_burst(500, true)
        );
    }

    #[test]
    fn shadowed_t1_cell_matches_unshadowed_and_is_clean() {
        let shadow = ShadowChecker::new();
        let shadowed = drive_t1_cell_shadowed(
            McMitigationConfig::None,
            false,
            true,
            true,
            Some(shadow.clone()),
        );
        assert_eq!(
            shadowed,
            drive_t1_cell(McMitigationConfig::None, false, true, true)
        );
        shadow.finish(shadowed.0);
        assert!(shadow.commands_checked() > 0);
        assert!(shadow.violations().is_empty(), "live stream not clean");
    }

    #[test]
    fn t1_cells_drivers_agree() {
        for (name, mitigation, trr) in t1_defense_catalog() {
            let fast = drive_t1_cell(mitigation, trr, true, true);
            let reference = drive_t1_cell(mitigation, trr, false, true);
            assert_eq!(fast, reference, "cell {name} diverged");
        }
    }
}
