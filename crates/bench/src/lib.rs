//! Benchmark-harness support: runs experiments in full mode, prints
//! the tables the evaluation reports, and persists them under
//! `target/experiments/` as both text and JSON so EXPERIMENTS.md can
//! be regenerated mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod step_loop;

use hammertime::experiments::ExpTable;
use std::fs;
use std::path::PathBuf;

/// Directory experiment artifacts are written to.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints a table and saves it as `<id>.txt` and `<id>.json`.
pub fn print_and_save(table: &ExpTable) {
    println!("{table}");
    let dir = artifact_dir();
    let _ = fs::write(dir.join(format!("{}.txt", table.id)), table.to_string());
    if let Ok(json) = serde_json::to_string_pretty(table) {
        let _ = fs::write(dir.join(format!("{}.json", table.id)), json);
    }
}

/// Runs an experiment in full mode (once), printing and saving the
/// table; panics on failure so benches fail loudly.
pub fn run_full(name: &str, f: impl Fn(bool) -> hammertime_common::Result<ExpTable>) -> ExpTable {
    let table = f(false).unwrap_or_else(|e| panic!("experiment {name} failed: {e}"));
    print_and_save(&table);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammertime::experiments;

    #[test]
    fn artifacts_round_trip() {
        let t = experiments::e6_scaling().unwrap();
        print_and_save(&t);
        let dir = artifact_dir();
        let txt = std::fs::read_to_string(dir.join("E6.txt")).unwrap();
        assert!(txt.contains("graphene"));
        let json = std::fs::read_to_string(dir.join("E6.json")).unwrap();
        let back: experiments::ExpTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows, t.rows);
    }
}
