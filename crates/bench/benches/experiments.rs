//! One Criterion bench per table/figure of the evaluation.
//!
//! Each target first regenerates its table in **full** mode — printing
//! it and persisting it under `target/experiments/` (this is the data
//! EXPERIMENTS.md records) — then lets Criterion time the quick
//! variant, so `cargo bench` both reproduces the results and tracks
//! the simulator's performance.

use criterion::{criterion_group, criterion_main, Criterion};
use hammertime::experiments;
use hammertime_bench::run_full;

fn bench_t1(c: &mut Criterion) {
    run_full("T1", experiments::t1_defense_matrix);
    c.bench_function("t1_defense_matrix", |b| {
        b.iter(|| experiments::t1_defense_matrix(true).unwrap())
    });
}

fn bench_f1(c: &mut Criterion) {
    run_full("F1", |_| experiments::f1_rowbuffer());
    c.bench_function("f1_rowbuffer", |b| {
        b.iter(|| experiments::f1_rowbuffer().unwrap())
    });
}

fn bench_f2(c: &mut Criterion) {
    run_full("F2", experiments::f2_interleaving);
    c.bench_function("f2_interleaving", |b| {
        b.iter(|| experiments::f2_interleaving(true).unwrap())
    });
}

fn bench_e1(c: &mut Criterion) {
    run_full("E1", experiments::e1_generations);
    c.bench_function("e1_generations", |b| {
        b.iter(|| experiments::e1_generations(true).unwrap())
    });
}

fn bench_e2(c: &mut Criterion) {
    run_full("E2", experiments::e2_trr_bypass);
    c.bench_function("e2_trr_bypass", |b| {
        b.iter(|| experiments::e2_trr_bypass(true).unwrap())
    });
}

fn bench_e3(c: &mut Criterion) {
    run_full("E3", experiments::e3_dma_blindspot);
    c.bench_function("e3_dma_blindspot", |b| {
        b.iter(|| experiments::e3_dma_blindspot(true).unwrap())
    });
}

fn bench_e4(c: &mut Criterion) {
    run_full("E4", experiments::e4_frequency);
    c.bench_function("e4_frequency", |b| {
        b.iter(|| experiments::e4_frequency(true).unwrap())
    });
}

fn bench_e5(c: &mut Criterion) {
    run_full("E5", experiments::e5_refresh);
    c.bench_function("e5_refresh", |b| {
        b.iter(|| experiments::e5_refresh(true).unwrap())
    });
}

fn bench_e6(c: &mut Criterion) {
    run_full("E6", |_| experiments::e6_scaling());
    c.bench_function("e6_scaling", |b| {
        b.iter(|| experiments::e6_scaling().unwrap())
    });
}

fn bench_e7(c: &mut Criterion) {
    run_full("E7", experiments::e7_inference);
    c.bench_function("e7_inference", |b| {
        b.iter(|| experiments::e7_inference(true).unwrap())
    });
}

fn bench_e8(c: &mut Criterion) {
    run_full("E8", experiments::e8_enclave);
    c.bench_function("e8_enclave", |b| {
        b.iter(|| experiments::e8_enclave(true).unwrap())
    });
}

fn bench_e9(c: &mut Criterion) {
    run_full("E9", experiments::e9_overhead);
    c.bench_function("e9_overhead", |b| {
        b.iter(|| experiments::e9_overhead(true).unwrap())
    });
}

fn bench_e10(c: &mut Criterion) {
    run_full("E10", experiments::e10_ecc);
    c.bench_function("e10_ecc", |b| b.iter(|| experiments::e10_ecc(true).unwrap()));
}

fn bench_e11(c: &mut Criterion) {
    run_full("E11", experiments::e11_page_policy);
    c.bench_function("e11_page_policy", |b| {
        b.iter(|| experiments::e11_page_policy(true).unwrap())
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_t1, bench_f1, bench_f2, bench_e1, bench_e2, bench_e3,
              bench_e4, bench_e5, bench_e6, bench_e7, bench_e8, bench_e9,
              bench_e10, bench_e11
}
criterion_main!(tables);
