//! One Criterion bench per table/figure of the evaluation, driven by
//! the experiment registry.
//!
//! Each registry entry first regenerates its table in **full** mode —
//! printing it and persisting it under `target/experiments/` (this is
//! the data EXPERIMENTS.md records) — then lets Criterion time the
//! quick variant, so `cargo bench` both reproduces the results and
//! tracks the simulator's performance. New experiments picked up from
//! [`hammertime::experiments::registry`] are benched automatically.

use criterion::{criterion_group, criterion_main, Criterion};
use hammertime::experiments::{registry, run_one};
use hammertime_bench::run_full;

fn bench_registry(c: &mut Criterion) {
    for exp in registry() {
        let id = exp.id();
        run_full(id, |quick| run_one(exp, quick));
        c.bench_function(format!("{}_quick", id.to_lowercase()), |b| {
            b.iter(|| run_one(exp, true).unwrap())
        });
    }
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_registry
}
criterion_main!(tables);
