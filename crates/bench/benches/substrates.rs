//! Micro-benchmarks of the simulator substrates themselves: address
//! translation, device command throughput, LLC access, and full-
//! machine simulation rate. These track the cost of simulating, not
//! the simulated system's metrics.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hammertime::machine::{Machine, MachineConfig};
use hammertime::taxonomy::DefenseKind;
use hammertime_cache::{CacheConfig, Llc};
use hammertime_common::geometry::BankId;
use hammertime_common::{CacheLineAddr, Cycle, DomainId, Geometry};
use hammertime_dram::{DdrCommand, DramConfig, DramModule};
use hammertime_memctrl::addrmap::{AddressMap, MappingScheme};
use hammertime_workloads::{StreamWorkload, Workload};

fn bench_addrmap(c: &mut Criterion) {
    let g = Geometry::server();
    let mut group = c.benchmark_group("addrmap");
    for scheme in [
        MappingScheme::CacheLineInterleave,
        MappingScheme::XorPermute,
        MappingScheme::SubarrayIsolated,
    ] {
        let map = AddressMap::new(scheme, g).unwrap();
        let total = g.total_lines();
        group.throughput(Throughput::Elements(1024));
        group.bench_function(format!("{scheme:?}/round_trip"), |b| {
            b.iter(|| {
                for i in 0..1024u64 {
                    let line = CacheLineAddr((i * 7_919) % total);
                    let coord = map.to_coord(black_box(line)).unwrap();
                    black_box(map.to_line(&coord).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn bench_dram_commands(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("act_pre_cycles", |b| {
        b.iter_batched(
            || DramModule::new(DramConfig::test_config(1_000_000)).unwrap(),
            |mut m| {
                let bank = BankId {
                    channel: 0,
                    rank: 0,
                    bank_group: 0,
                    bank: 0,
                };
                let mut now = Cycle::ZERO;
                for i in 0..1_000u32 {
                    let act = DdrCommand::Act { bank, row: i % 32 };
                    now = now.max(m.earliest(&act));
                    m.issue(&act, now).unwrap();
                    let pre = DdrCommand::Pre { bank };
                    now = now.max(m.earliest(&pre));
                    m.issue(&pre, now).unwrap();
                }
                m
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_llc(c: &mut Criterion) {
    let mut group = c.benchmark_group("llc");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("mixed_access", |b| {
        b.iter_batched(
            || Llc::new(CacheConfig::server()).unwrap(),
            |mut llc| {
                for i in 0..10_000u64 {
                    llc.access(CacheLineAddr(i * 31 % 65_536), i % 5 == 0);
                }
                llc
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("benign_stream_2k_ops", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::fast(DefenseKind::None, 1_000_000)).unwrap();
            let d = DomainId(1);
            let arena = m.add_tenant(d, 4).unwrap();
            m.set_workload(d, Box::new(StreamWorkload::new(arena, 2_000, 8)))
                .unwrap();
            m.run(10_000_000);
            black_box(m.report())
        })
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("zipfian_10k_ops", |b| {
        let arena: Vec<CacheLineAddr> = (0..4_096).map(CacheLineAddr).collect();
        b.iter(|| {
            let mut w = hammertime_workloads::ZipfianWorkload::new(
                arena.clone(),
                10_000,
                0.99,
                hammertime_common::DetRng::new(1),
            );
            let mut n = 0u64;
            while let Some(op) = w.next_op() {
                n += op.line().line_index();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_addrmap, bench_dram_commands, bench_llc, bench_machine,
              bench_workload_generation
}
criterion_main!(substrates);
