//! Step-loop micro-benchmarks: the fast scheduler (`MemCtrl::step`,
//! memoized per-bank scan + idle fast-forward) head-to-head against
//! the pre-optimization reference linear scan, plus batched vs per-ACT
//! disturbance accounting. The `step_loop` runner binary times the
//! same scenarios end-to-end and records them in `BENCH_step_loop.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hammertime_bench::step_loop::{
    drive_t1_cell, fleet_sweep, hammer_burst, idle_poll, t1_defense_catalog, IDLE_QUANTUM,
};

const IDLE_CYCLES: u64 = 200_000;

fn bench_idle_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_loop/idle_poll");
    group.throughput(Throughput::Elements(IDLE_CYCLES / IDLE_QUANTUM));
    for fast in [true, false] {
        let name = if fast { "fast" } else { "reference" };
        group.bench_function(name, |b| b.iter(|| black_box(idle_poll(IDLE_CYCLES, fast))));
    }
    group.finish();
}

fn bench_t1_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_loop/t1_cell");
    group.sample_size(10);
    for (name, mitigation, trr) in t1_defense_catalog() {
        for fast in [true, false] {
            let label = format!("{name}/{}", if fast { "fast" } else { "reference" });
            let m = mitigation;
            group.bench_function(label, |b| {
                b.iter(|| black_box(drive_t1_cell(m, trr, fast, true)))
            });
        }
    }
    group.finish();
}

fn bench_hammer_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_loop/hammer_burst");
    group.throughput(Throughput::Elements(2_000));
    for batched in [false, true] {
        let name = if batched { "batched" } else { "per_act" };
        group.bench_function(name, |b| b.iter(|| black_box(hammer_burst(2_000, batched))));
    }
    group.finish();
}

fn bench_fleet_sweep(c: &mut Criterion) {
    const MACHINES: u32 = 16;
    let mut group = c.benchmark_group("step_loop/fleet_sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(MACHINES as u64));
    for jobs in [1usize, 4] {
        let name = if jobs == 1 { "serial" } else { "sharded_x4" };
        group.bench_function(name, |b| b.iter(|| black_box(fleet_sweep(MACHINES, jobs))));
    }
    group.finish();
}

criterion_group! {
    name = step_loop;
    config = Criterion::default().sample_size(20);
    targets = bench_idle_poll, bench_t1_cells, bench_hammer_burst, bench_fleet_sweep
}
criterion_main!(step_loop);
