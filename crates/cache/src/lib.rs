//! Last-level cache model for the `hammertime` workspace.
//!
//! Provides the two cache-level mechanisms the paper's
//! frequency-centric defenses depend on: way locking (pin hot lines so
//! they stop generating ACTs, §4.2) and PMU miss-address sampling (the
//! ANVIL-style input that is blind to DMA, §1). See [`llc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod llc;

pub use llc::{AccessResult, CacheConfig, CacheStats, Llc, MissSample};
