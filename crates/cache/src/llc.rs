//! A set-associative, write-back, write-allocate last-level cache.
//!
//! Two features exist specifically for the paper's defenses:
//!
//! - **Way locking** ([`Llc::lock`]): pin a line into its set so it can
//!   never be evicted — the cache-line-locking mechanism the paper
//!   notes is already available on many ARM parts and proposes using
//!   as a frequency-centric first line of defense (§4.2). Locked
//!   capacity per set is bounded so demand traffic always retains at
//!   least one victim way.
//! - **PMU miss sampling** ([`Llc::drain_samples`]): a PEBS-like
//!   sampler that records the address of every Nth *core* miss. DMA
//!   traffic never reaches the cache (it bypasses it at the machine
//!   level), which is precisely the ANVIL blind spot (§1).

use hammertime_common::{CacheLineAddr, Error, Result};
use serde::{Deserialize, Serialize};

/// Cache shape and sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Maximum locked lines per set (must be `< ways`).
    pub max_locked_ways: usize,
    /// Sample every Nth core miss into the PMU buffer (0 disables).
    pub pmu_sample_period: u64,
}

impl CacheConfig {
    /// A small test cache: 16 sets x 4 ways, lock up to 2 ways,
    /// sample every miss.
    pub fn small_test() -> CacheConfig {
        CacheConfig {
            sets: 16,
            ways: 4,
            max_locked_ways: 2,
            pmu_sample_period: 1,
        }
    }

    /// A server-ish LLC: 2048 sets x 16 ways (2 MiB of 64 B lines).
    pub fn server() -> CacheConfig {
        CacheConfig {
            sets: 2048,
            ways: 16,
            max_locked_ways: 4,
            pmu_sample_period: 64,
        }
    }

    /// Validates shape constraints.
    pub fn validate(&self) -> Result<()> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err(Error::Config(format!(
                "cache sets {} must be a non-zero power of two",
                self.sets
            )));
        }
        if self.ways == 0 {
            return Err(Error::Config("cache needs at least one way".into()));
        }
        if self.max_locked_ways >= self.ways {
            return Err(Error::Config(format!(
                "max_locked_ways {} must leave at least one unlocked way of {}",
                self.max_locked_ways, self.ways
            )));
        }
        Ok(())
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: CacheLineAddr,
    dirty: bool,
    locked: bool,
    last_use: u64,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The access hit in the cache.
    pub hit: bool,
    /// A dirty line evicted to make room (must be written back to
    /// memory by the caller).
    pub writeback: Option<CacheLineAddr>,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Evictions (clean or dirty).
    pub evictions: u64,
    /// Dirty evictions written back.
    pub writebacks: u64,
    /// Explicit flushes.
    pub flushes: u64,
    /// Flushes that hit a locked line and were refused.
    pub flushes_blocked: u64,
    /// Lock operations performed.
    pub locks: u64,
    /// Lock attempts rejected for lack of lockable ways.
    pub lock_failures: u64,
}

/// A PMU miss sample: address and whether the miss was a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissSample {
    /// The missing line.
    pub line: CacheLineAddr,
    /// Write miss (vs. read miss).
    pub is_write: bool,
}

/// The last-level cache.
#[derive(Debug, Clone)]
pub struct Llc {
    config: CacheConfig,
    sets: Vec<Vec<Entry>>,
    tick: u64,
    miss_count: u64,
    samples: Vec<MissSample>,
    stats: CacheStats,
}

impl Llc {
    /// Builds a cache.
    ///
    /// # Errors
    ///
    /// [`Error::Config`] for invalid shapes.
    pub fn new(config: CacheConfig) -> Result<Llc> {
        config.validate()?;
        Ok(Llc {
            sets: vec![Vec::with_capacity(config.ways); config.sets],
            tick: 0,
            miss_count: 0,
            samples: Vec::new(),
            stats: CacheStats::default(),
            config,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_index(&self, line: CacheLineAddr) -> usize {
        (line.line_index() % self.config.sets as u64) as usize
    }

    /// Accesses `line` from a CPU core. On a miss the line is
    /// allocated; the evicted dirty victim (if any) is returned for
    /// write-back. The caller is responsible for fetching the line
    /// from memory on a miss.
    pub fn access(&mut self, line: CacheLineAddr, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.last_use = tick;
            e.dirty |= is_write;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        self.miss_count += 1;
        if self.config.pmu_sample_period > 0
            && self
                .miss_count
                .is_multiple_of(self.config.pmu_sample_period)
        {
            self.samples.push(MissSample { line, is_write });
        }
        let mut writeback = None;
        if set.len() >= self.config.ways {
            // Evict LRU among unlocked entries; at least one exists
            // because locked ways are bounded below the associativity.
            let victim_idx = set
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.locked)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
                .expect("lock bound guarantees an unlocked way");
            let victim = set.swap_remove(victim_idx);
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
                writeback = Some(victim.line);
            }
        }
        set.push(Entry {
            line,
            dirty: is_write,
            locked: false,
            last_use: tick,
        });
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Flushes `line` (clflush): removes it, returning it for
    /// write-back if dirty.
    ///
    /// Locked lines are immune: the host-privileged pin (§4.2)
    /// overrides user-level cache maintenance, otherwise an attacker
    /// would trivially un-pin its aggressor lines with `clflush` and
    /// the defense would be useless. The flush of a locked line is a
    /// counted no-op.
    pub fn flush(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        self.stats.flushes += 1;
        if let Some(pos) = set.iter().position(|e| e.line == line) {
            if set[pos].locked {
                self.stats.flushes_blocked += 1;
                return None;
            }
            let e = set.swap_remove(pos);
            if e.dirty {
                self.stats.writebacks += 1;
                return Some(e.line);
            }
        }
        None
    }

    /// Locks `line` into the cache (allocating it if absent) so it can
    /// never be evicted — the paper's cache-line-locking defense
    /// (§4.2). The line stops generating memory traffic (and therefore
    /// ACTs) until unlocked.
    ///
    /// # Errors
    ///
    /// [`Error::Exhausted`] when the set already holds the maximum
    /// number of locked ways; the caller falls back to data remapping
    /// (exactly the fallback the paper describes).
    pub fn lock(&mut self, line: CacheLineAddr) -> Result<AccessResult> {
        let set_idx = self.set_index(line);
        let locked = self.sets[set_idx].iter().filter(|e| e.locked).count();
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.line == line) {
            if !e.locked && locked >= self.config.max_locked_ways {
                self.stats.lock_failures += 1;
                return Err(Error::Exhausted(format!(
                    "set {set_idx} already holds {locked} locked ways"
                )));
            }
            e.locked = true;
            self.stats.locks += 1;
            return Ok(AccessResult {
                hit: true,
                writeback: None,
            });
        }
        if locked >= self.config.max_locked_ways {
            self.stats.lock_failures += 1;
            return Err(Error::Exhausted(format!(
                "set {set_idx} already holds {locked} locked ways"
            )));
        }
        let result = self.access(line, false);
        let set = &mut self.sets[set_idx];
        let e = set
            .iter_mut()
            .find(|e| e.line == line)
            .expect("just inserted");
        e.locked = true;
        self.stats.locks += 1;
        Ok(result)
    }

    /// Unlocks `line`, making it evictable again.
    pub fn unlock(&mut self, line: CacheLineAddr) {
        let set_idx = self.set_index(line);
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.line == line) {
            e.locked = false;
        }
    }

    /// Unlocks everything (end of a refresh interval, §4.2).
    pub fn unlock_all(&mut self) {
        for set in &mut self.sets {
            for e in set.iter_mut() {
                e.locked = false;
            }
        }
    }

    /// Returns whether `line` is currently resident.
    pub fn contains(&self, line: CacheLineAddr) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|e| e.line == line)
    }

    /// Returns whether `line` is currently locked.
    pub fn is_locked(&self, line: CacheLineAddr) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|e| e.line == line && e.locked)
    }

    /// Number of locked lines across the cache.
    pub fn locked_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.locked).count())
            .sum()
    }

    /// Drains accumulated PMU miss samples (ANVIL's input).
    pub fn drain_samples(&mut self) -> Vec<MissSample> {
        std::mem::take(&mut self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> Llc {
        Llc::new(CacheConfig::small_test()).unwrap()
    }

    /// Lines mapping to the same set, distinct tags.
    fn same_set_lines(n: usize) -> Vec<CacheLineAddr> {
        (0..n).map(|i| CacheLineAddr(16 * i as u64 + 3)).collect()
    }

    #[test]
    fn miss_then_hit() {
        let mut c = llc();
        let line = CacheLineAddr(5);
        assert!(!c.access(line, false).hit);
        assert!(c.access(line, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut c = llc();
        let lines = same_set_lines(5);
        c.access(lines[0], true); // dirty, will become LRU
        for l in &lines[1..4] {
            c.access(*l, false);
        }
        // Fifth insert evicts lines[0] (LRU, dirty).
        let r = c.access(lines[4], false);
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(lines[0]));
        assert!(!c.contains(lines[0]));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = llc();
        let lines = same_set_lines(5);
        for l in &lines[..4] {
            c.access(*l, false);
        }
        let r = c.access(lines[4], false);
        assert_eq!(r.writeback, None);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn flush_removes_and_writes_back_dirty() {
        let mut c = llc();
        let line = CacheLineAddr(9);
        c.access(line, true);
        assert_eq!(c.flush(line), Some(line));
        assert!(!c.contains(line));
        // Flushing an absent line is a no-op.
        assert_eq!(c.flush(line), None);
        assert_eq!(c.stats().flushes, 2);
    }

    #[test]
    fn locked_lines_survive_eviction_pressure() {
        let mut c = llc();
        let lines = same_set_lines(10);
        c.lock(lines[0]).unwrap();
        for l in &lines[1..] {
            c.access(*l, false);
        }
        assert!(c.contains(lines[0]), "locked line evicted");
        assert!(c.is_locked(lines[0]));
        assert_eq!(c.locked_lines(), 1);
    }

    #[test]
    fn lock_capacity_bounded_per_set() {
        let mut c = llc(); // max_locked_ways = 2
        let lines = same_set_lines(4);
        c.lock(lines[0]).unwrap();
        c.lock(lines[1]).unwrap();
        let err = c.lock(lines[2]);
        assert!(matches!(err, Err(Error::Exhausted(_))));
        assert_eq!(c.stats().lock_failures, 1);
        // Other sets are unaffected.
        c.lock(CacheLineAddr(4)).unwrap();
    }

    #[test]
    fn unlock_restores_evictability() {
        let mut c = llc();
        let lines = same_set_lines(6);
        c.lock(lines[0]).unwrap();
        c.unlock(lines[0]);
        for l in &lines[1..6] {
            c.access(*l, false);
        }
        assert!(!c.contains(lines[0]), "unlocked line must be evictable");
    }

    #[test]
    fn locked_lines_resist_flush() {
        let mut c = llc();
        let line = CacheLineAddr(11);
        c.access(line, true);
        c.lock(line).unwrap();
        assert_eq!(c.flush(line), None, "flush of a locked line is refused");
        assert!(c.contains(line));
        assert!(c.is_locked(line));
        assert_eq!(c.stats().flushes_blocked, 1);
        // After unlock, flushing works again.
        c.unlock(line);
        assert_eq!(c.flush(line), Some(line));
    }

    #[test]
    fn unlock_all_clears_every_lock() {
        let mut c = llc();
        c.lock(CacheLineAddr(1)).unwrap();
        c.lock(CacheLineAddr(2)).unwrap();
        assert_eq!(c.locked_lines(), 2);
        c.unlock_all();
        assert_eq!(c.locked_lines(), 0);
    }

    #[test]
    fn locking_resident_line_upgrades_in_place() {
        let mut c = llc();
        let line = CacheLineAddr(3);
        c.access(line, true);
        let r = c.lock(line).unwrap();
        assert!(r.hit);
        assert!(c.is_locked(line));
    }

    #[test]
    fn pmu_samples_misses_at_period() {
        let mut c = Llc::new(CacheConfig {
            pmu_sample_period: 2,
            ..CacheConfig::small_test()
        })
        .unwrap();
        for i in 0..8 {
            c.access(CacheLineAddr(1000 + i * 16), false);
        }
        let samples = c.drain_samples();
        assert_eq!(samples.len(), 4, "every 2nd miss sampled");
        assert!(c.drain_samples().is_empty());
    }

    #[test]
    fn pmu_disabled_records_nothing() {
        let mut c = Llc::new(CacheConfig {
            pmu_sample_period: 0,
            ..CacheConfig::small_test()
        })
        .unwrap();
        for i in 0..8 {
            c.access(CacheLineAddr(i * 16), false);
        }
        assert!(c.drain_samples().is_empty());
    }

    #[test]
    fn hits_are_not_sampled() {
        let mut c = llc();
        let line = CacheLineAddr(7);
        c.access(line, false);
        c.drain_samples();
        for _ in 0..10 {
            c.access(line, false);
        }
        assert!(c.drain_samples().is_empty(), "hits must not be sampled");
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig {
            sets: 0,
            ..CacheConfig::small_test()
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            sets: 3,
            ..CacheConfig::small_test()
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            ways: 0,
            ..CacheConfig::small_test()
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            max_locked_ways: 4,
            ..CacheConfig::small_test()
        }
        .validate()
        .is_err());
        assert_eq!(CacheConfig::small_test().capacity_lines(), 64);
        CacheConfig::server().validate().unwrap();
    }
}
