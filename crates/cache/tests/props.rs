//! Property tests for the LLC model.

use hammertime_cache::{CacheConfig, Llc};
use hammertime_common::{CacheLineAddr, DetRng};
use proptest::prelude::*;

fn config() -> CacheConfig {
    CacheConfig {
        sets: 16,
        ways: 4,
        max_locked_ways: 2,
        pmu_sample_period: 3,
    }
}

proptest! {
    /// Under arbitrary access sequences the cache never exceeds its
    /// capacity, hit/miss counts add up, and a hit immediately after
    /// an access to the same line always holds.
    #[test]
    fn capacity_and_accounting(ops in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300)) {
        let mut c = Llc::new(config()).unwrap();
        let mut accesses = 0;
        for (line, is_write) in ops {
            let line = CacheLineAddr(line % 512);
            c.access(line, is_write);
            accesses += 1;
            prop_assert!(c.contains(line), "just-accessed line resident");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, accesses);
        // Residency bounded by capacity: evictions at least
        // misses - capacity.
        prop_assert!(s.evictions + config().capacity_lines() as u64 >= s.misses);
    }

    /// Locked lines survive arbitrary eviction pressure and flushes.
    #[test]
    fn locks_are_durable(
        locked_tag in 0u64..8,
        traffic in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut c = Llc::new(config()).unwrap();
        let locked = CacheLineAddr(locked_tag * 16 + 5); // set 5
        c.lock(locked).unwrap();
        for t in traffic {
            let line = CacheLineAddr(t % 1024);
            if line != locked {
                c.access(line, t % 3 == 0);
                if t % 7 == 0 {
                    c.flush(line);
                }
            }
            if t % 5 == 0 {
                c.flush(locked); // attacker tries to dislodge the pin
            }
        }
        prop_assert!(c.contains(locked));
        prop_assert!(c.is_locked(locked));
        c.unlock_all();
        prop_assert_eq!(c.locked_lines(), 0);
    }

    /// The per-set lock bound always holds, and lock failures are
    /// reported rather than silently over-locking.
    #[test]
    fn lock_bound_enforced(tags in prop::collection::vec(0u64..16, 1..32)) {
        let mut c = Llc::new(config()).unwrap();
        for tag in tags {
            let line = CacheLineAddr(tag * 16 + 3); // all map to set 3
            let _ = c.lock(line);
            let locked_in_set = (0..16u64)
                .map(|t| CacheLineAddr(t * 16 + 3))
                .filter(|&l| c.is_locked(l))
                .count();
            prop_assert!(locked_in_set <= config().max_locked_ways);
        }
    }

    /// PMU sampling records exactly every Nth miss, never hits.
    #[test]
    fn pmu_sampling_rate(misses in 1usize..200) {
        let mut c = Llc::new(config()).unwrap();
        // Distinct lines in distinct sets: all misses.
        for i in 0..misses {
            c.access(CacheLineAddr(i as u64 * 17), false);
        }
        let samples = c.drain_samples();
        prop_assert_eq!(samples.len(), misses / 3);
    }

    /// Write-back correctness: every dirty eviction reports the line
    /// that was actually dirty; clean evictions never report.
    #[test]
    fn writeback_accounting(seed in any::<u64>(), n in 10usize..200) {
        let mut c = Llc::new(config()).unwrap();
        let mut rng = DetRng::new(seed);
        let mut dirty = std::collections::HashSet::new();
        let mut writebacks = 0u64;
        for _ in 0..n {
            let line = CacheLineAddr(rng.below(256));
            let is_write = rng.chance(0.4);
            let r = c.access(line, is_write);
            if is_write {
                dirty.insert(line);
            }
            if let Some(wb) = r.writeback {
                prop_assert!(dirty.contains(&wb), "clean line written back");
                dirty.remove(&wb);
                writebacks += 1;
            }
        }
        prop_assert_eq!(c.stats().writebacks, writebacks);
    }
}
