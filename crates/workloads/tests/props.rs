//! Property tests for the workload generators.

use hammertime_common::{CacheLineAddr, DetRng};
use hammertime_workloads::{
    AccessOp, DmaHammer, HammerPattern, RandomWorkload, StreamWorkload, Trace, Workload,
    ZipfianWorkload,
};
use proptest::prelude::*;

fn drain(w: &mut dyn Workload) -> Vec<AccessOp> {
    std::iter::from_fn(|| w.next_op()).collect()
}

proptest! {
    /// A hammer of N accesses emits exactly N flush+read pairs, reads
    /// only aggressor lines, and round-robins them fairly.
    #[test]
    fn hammer_structure(n_aggr in 1usize..8, accesses in 1u64..500) {
        let aggressors: Vec<CacheLineAddr> =
            (0..n_aggr as u64).map(|i| CacheLineAddr(i * 100)).collect();
        let mut w = HammerPattern::many_sided(aggressors.clone(), accesses);
        let ops = drain(&mut w);
        prop_assert_eq!(ops.len() as u64, accesses * 2);
        let mut counts = std::collections::HashMap::new();
        for pair in ops.chunks(2) {
            prop_assert!(matches!(pair[0], AccessOp::Flush(_)));
            prop_assert!(matches!(pair[1], AccessOp::Read(_)));
            prop_assert_eq!(pair[0].line(), pair[1].line());
            prop_assert!(aggressors.contains(&pair[1].line()));
            *counts.entry(pair[1].line()).or_insert(0u64) += 1;
        }
        // Round-robin fairness: per-aggressor counts differ by <= 1.
        let max = counts.values().max().copied().unwrap_or(0);
        let min = counts.values().min().copied().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// DMA hammers emit exactly N reads, no flushes.
    #[test]
    fn dma_hammer_structure(accesses in 1u64..500) {
        let mut w = DmaHammer::new(0, vec![CacheLineAddr(1), CacheLineAddr(2)], accesses);
        let ops = drain(&mut w);
        prop_assert_eq!(ops.len() as u64, accesses);
        prop_assert!(ops.iter().all(|o| matches!(o, AccessOp::Read(_))));
    }

    /// Benign generators emit exactly the requested number of accesses
    /// and stay inside their arena.
    #[test]
    fn benign_generators_bounded(arena_size in 1u64..64, accesses in 0u64..400, seed in any::<u64>()) {
        let arena: Vec<CacheLineAddr> = (0..arena_size).map(CacheLineAddr).collect();
        let mut generators: Vec<Box<dyn Workload>> = vec![
            Box::new(StreamWorkload::new(arena.clone(), accesses, 5)),
            Box::new(RandomWorkload::new(arena.clone(), accesses, 0.3, DetRng::new(seed))),
            Box::new(ZipfianWorkload::new(arena.clone(), accesses, 0.9, DetRng::new(seed))),
        ];
        for w in &mut generators {
            let ops = drain(w.as_mut());
            prop_assert_eq!(ops.len() as u64, accesses);
            prop_assert!(ops.iter().all(|o| arena.contains(&o.line())));
        }
    }

    /// Zipfian skew is monotone: lower-ranked arena entries are
    /// accessed at least as often as higher-ranked ones (within noise)
    /// for a strongly skewed distribution.
    #[test]
    fn zipf_rank_monotonicity(seed in any::<u64>()) {
        let arena: Vec<CacheLineAddr> = (0..16).map(CacheLineAddr).collect();
        let mut w = ZipfianWorkload::new(arena, 20_000, 1.2, DetRng::new(seed));
        let mut counts = vec![0u64; 16];
        while let Some(op) = w.next_op() {
            counts[op.line().line_index() as usize] += 1;
        }
        // Rank 0 must clearly dominate rank 8+.
        prop_assert!(counts[0] > counts[8] * 2, "{counts:?}");
        prop_assert!(counts[0] > counts[15].max(1) * 2, "{counts:?}");
    }

    /// Trace record → replay is identity for any generator.
    #[test]
    fn trace_identity(accesses in 1u64..200, seed in any::<u64>()) {
        let arena: Vec<CacheLineAddr> = (0..16).map(CacheLineAddr).collect();
        let mut w = RandomWorkload::new(arena, accesses, 0.2, DetRng::new(seed));
        let trace = Trace::record(&mut w, usize::MAX);
        let mut replay = trace.replay();
        let replayed = drain(&mut replay);
        prop_assert_eq!(replayed, trace.ops.clone());
        // Serde round trip too.
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Every recorded trace carries the shared version header, keeps
    /// it (and the truncation flag) through a serde round trip, and
    /// reports truncation exactly when the cap cut the generator off.
    #[test]
    fn trace_header_and_truncation(accesses in 1u64..100, cap in 0usize..250) {
        let mut w = HammerPattern::single_sided(CacheLineAddr(7), accesses);
        let trace = Trace::record(&mut w, cap);
        trace.validate().unwrap();
        let total_ops = (accesses * 2) as usize; // flush+read per access
        prop_assert_eq!(trace.len(), total_ops.min(cap));
        prop_assert_eq!(trace.truncated, cap < total_ops);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Paced patterns deliver the full aggressor access budget (decoys
    /// are extras, excluded from it) and insert decoys at exactly the
    /// configured period.
    #[test]
    fn paced_decoy_period(burst in 1u64..10, accesses in 1u64..300) {
        let decoy = CacheLineAddr(999);
        let aggr = CacheLineAddr(1);
        let mut w = HammerPattern::single_sided(aggr, accesses).paced(burst, decoy);
        let reads: Vec<CacheLineAddr> = drain(&mut w)
            .into_iter()
            .filter(|o| matches!(o, AccessOp::Read(_)))
            .map(|o| o.line())
            .collect();
        // Aggressor budget is preserved exactly; decoys ride on top,
        // one after every completed burst (never trailing the stream).
        let decoys = (accesses - 1) / burst;
        prop_assert_eq!(reads.iter().filter(|&&l| l == aggr).count() as u64, accesses);
        prop_assert_eq!(reads.iter().filter(|&&l| l == decoy).count() as u64, decoys);
        prop_assert_eq!(reads.len() as u64, accesses + decoys);
        prop_assert_eq!(w.remaining(), 0);
        for (i, line) in reads.iter().enumerate() {
            let is_decoy_slot = (i as u64) % (burst + 1) == burst;
            prop_assert_eq!(*line == decoy, is_decoy_slot, "position {}", i);
        }
    }

    /// Fuzzed-hammer schedules are a pure function of the rng fork
    /// handed in: the same seed yields the same schedule no matter how
    /// many unrelated draws other machines made first (the property
    /// that makes A1 byte-identical across `--jobs 1/8`).
    #[test]
    fn fuzzed_schedule_is_seed_deterministic(
        seed in any::<u64>(),
        n_aggr in 1usize..8,
        noise_draws in 0u64..64,
    ) {
        use hammertime_workloads::FuzzedHammer;
        let aggressors: Vec<CacheLineAddr> =
            (0..n_aggr as u64).map(|i| CacheLineAddr(i * 100)).collect();
        let reference = FuzzedHammer::generate(DetRng::new(seed), &aggressors, 50);
        // Simulate another worker interleaving arbitrary machine
        // construction: ambient draws must not shift the schedule.
        let mut ambient = DetRng::new(seed ^ 0xDEAD);
        for _ in 0..noise_draws {
            ambient.next_u64();
        }
        let again = FuzzedHammer::generate(DetRng::new(seed), &aggressors, 50);
        prop_assert_eq!(reference.schedule(), again.schedule());
        // And the ops streams match end to end.
        let (mut a, mut b) = (reference.clone(), again.clone());
        prop_assert_eq!(drain(&mut a), drain(&mut b));
    }
}
