//! Replayable access traces.
//!
//! A [`Trace`] is a recorded operation sequence with a source tag —
//! the exchange format between workload generation and replay (and
//! between runs: traces serialize with serde so an experiment can be
//! rerun bit-identically from its recorded input).

use crate::ops::{AccessOp, Workload};
use hammertime_common::traceformat::{TraceHeader, TraceKind};
use hammertime_common::{RequestSource, Result};
use serde::{Deserialize, Serialize};

/// A recorded operation stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Shared trace version header (always [`TraceHeader::ops`] when
    /// recorded by this build); [`Trace::validate`] rejects foreign or
    /// future formats after deserialization.
    pub header: TraceHeader,
    /// Display name.
    pub name: String,
    /// Who issues the stream.
    pub source: RequestSource,
    /// The operations in order.
    pub ops: Vec<AccessOp>,
    /// Whether recording stopped at the `max_ops` cap while the
    /// workload still had operations to emit. A truncated trace is not
    /// a faithful recording of the generator, so replaying it will not
    /// reproduce the full run.
    pub truncated: bool,
}

impl Trace {
    /// Records a workload to completion (capped at `max_ops` to keep
    /// unbounded generators finite). If the cap cuts the workload off
    /// mid-stream, the trace is marked [`Trace::truncated`] rather
    /// than silently dropping the remainder.
    pub fn record(workload: &mut dyn Workload, max_ops: usize) -> Trace {
        let mut ops = Vec::new();
        let mut truncated = false;
        loop {
            if ops.len() == max_ops {
                // Probe one more op to distinguish "exactly fit" from
                // "cap hit with work remaining".
                truncated = workload.next_op().is_some();
                break;
            }
            match workload.next_op() {
                Some(op) => ops.push(op),
                None => break,
            }
        }
        Trace {
            header: TraceHeader::ops(),
            name: workload.name().to_string(),
            source: workload.source(),
            ops,
            truncated,
        }
    }

    /// Checks the version header: the trace must be an input-side ops
    /// trace of a version this build reads.
    pub fn validate(&self) -> Result<()> {
        self.header.validate(TraceKind::Ops)
    }

    /// A replayer over this trace.
    pub fn replay(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            trace: self,
            pos: 0,
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Replays a [`Trace`] as a [`Workload`].
#[derive(Debug)]
pub struct TraceReplayer<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl Workload for TraceReplayer<'_> {
    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn source(&self) -> RequestSource {
        self.trace.source
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        let op = self.trace.ops.get(self.pos).copied();
        self.pos += op.is_some() as usize;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::HammerPattern;
    use hammertime_common::CacheLineAddr;

    #[test]
    fn record_and_replay_round_trip() {
        let mut w = HammerPattern::single_sided(CacheLineAddr(5), 3);
        let trace = Trace::record(&mut w, 1000);
        assert_eq!(trace.len(), 6); // 3 flush+read pairs
        assert_eq!(trace.name, "single-sided");
        assert!(!trace.truncated);
        trace.validate().unwrap();
        let mut replay = trace.replay();
        let replayed: Vec<_> = std::iter::from_fn(|| replay.next_op()).collect();
        assert_eq!(replayed, trace.ops);
        assert_eq!(replay.source(), trace.source);
    }

    #[test]
    fn record_caps_at_max_ops_and_reports_truncation() {
        let mut w = HammerPattern::single_sided(CacheLineAddr(5), 1_000_000);
        let trace = Trace::record(&mut w, 10);
        assert_eq!(trace.len(), 10);
        assert!(trace.truncated, "cap cut off a live generator");
    }

    #[test]
    fn exactly_full_trace_is_not_truncated() {
        // 3 accesses → 6 ops; a cap of exactly 6 fits the whole stream.
        let mut w = HammerPattern::single_sided(CacheLineAddr(5), 3);
        let trace = Trace::record(&mut w, 6);
        assert_eq!(trace.len(), 6);
        assert!(!trace.truncated, "stream fit exactly — nothing dropped");
    }

    #[test]
    fn validate_rejects_foreign_headers() {
        let mut w = HammerPattern::single_sided(CacheLineAddr(5), 1);
        let mut trace = Trace::record(&mut w, 100);
        trace.validate().unwrap();
        trace.header = hammertime_common::traceformat::TraceHeader::commands();
        assert!(trace.validate().is_err());
    }

    #[test]
    fn trace_serializes() {
        let mut w = HammerPattern::single_sided(CacheLineAddr(5), 2);
        let trace = Trace::record(&mut w, 100);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
