//! Rowhammer attack pattern generators.
//!
//! An attack is a repeated flush+access loop over a set of aggressor
//! lines: the flush guarantees the access misses the cache, and
//! alternating aggressors within one bank guarantees row-buffer
//! conflicts, so every access becomes an ACT (paper §2.1). The
//! aggressor line sets themselves are chosen by the experiment layer
//! (which knows the address map); the generators here only encode the
//! *temporal pattern*:
//!
//! - [`HammerPattern::single_sided`] — one aggressor (classic).
//! - [`HammerPattern::double_sided`] — two aggressors sandwiching a
//!   victim (the strongest classic pattern).
//! - [`HammerPattern::many_sided`] — N aggressors round-robin, the
//!   TRRespass pattern that defeats small in-DRAM trackers (§3).
//! - [`HammerPattern::paced`] — inserts idle gaps to dodge
//!   deterministic ACT-counter sampling (the evasion the paper's
//!   randomized counter resets defeat, §4.2).
//!
//! [`DmaHammer`] wraps any pattern with a DMA source so it bypasses
//! the cache hierarchy and PMU sampling entirely (§1).

use crate::ops::{AccessOp, Workload};
use hammertime_common::{CacheLineAddr, RequestSource};
use serde::{Deserialize, Serialize};

/// A flush+read hammer over a set of aggressor lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HammerPattern {
    name: &'static str,
    aggressors: Vec<CacheLineAddr>,
    /// Aggressor accesses (each is one flush + one read) to perform.
    /// Decoy accesses inserted by pacing are *extra*: they never
    /// consume this budget, so a paced pattern delivers the same
    /// aggressor ACT pressure as an unpaced one.
    accesses: u64,
    /// Idle `None`-free pacing: after every `burst` aggressor accesses
    /// the pattern would pause; encoded by interleaving reads of a
    /// decoy line (0 = no pacing).
    pace_burst: u64,
    decoy: Option<CacheLineAddr>,
    /// Aggressor accesses issued so far (decoys excluded).
    issued: u64,
    /// Decoy accesses issued so far.
    decoys_issued: u64,
    /// Aggressor accesses since the last decoy insertion.
    since_decoy: u64,
    pending_read: Option<CacheLineAddr>,
}

impl HammerPattern {
    /// A custom aggressor set hammered round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `aggressors` is empty.
    pub fn new(name: &'static str, aggressors: Vec<CacheLineAddr>, accesses: u64) -> HammerPattern {
        assert!(
            !aggressors.is_empty(),
            "attack needs at least one aggressor"
        );
        HammerPattern {
            name,
            aggressors,
            accesses,
            pace_burst: 0,
            decoy: None,
            issued: 0,
            decoys_issued: 0,
            since_decoy: 0,
            pending_read: None,
        }
    }

    /// Classic single-sided hammer.
    pub fn single_sided(aggressor: CacheLineAddr, accesses: u64) -> HammerPattern {
        HammerPattern::new("single-sided", vec![aggressor], accesses)
    }

    /// Double-sided hammer around a victim.
    pub fn double_sided(
        above: CacheLineAddr,
        below: CacheLineAddr,
        accesses: u64,
    ) -> HammerPattern {
        HammerPattern::new("double-sided", vec![above, below], accesses)
    }

    /// TRRespass-style many-sided hammer.
    pub fn many_sided(aggressors: Vec<CacheLineAddr>, accesses: u64) -> HammerPattern {
        HammerPattern::new("many-sided", aggressors, accesses)
    }

    /// Adds deterministic pacing: after every `burst` aggressor
    /// accesses, one *extra* access goes to `decoy` — an attacker
    /// trying to keep each aggressor just under a predictable counter
    /// threshold. Decoy accesses are pure overhead for the attacker;
    /// they do not consume the aggressor access budget, so
    /// [`HammerPattern::remaining`] always reports aggressor ACT
    /// pressure still to come, never pending decoys.
    pub fn paced(mut self, burst: u64, decoy: CacheLineAddr) -> HammerPattern {
        self.name = "paced";
        self.pace_burst = burst;
        self.decoy = Some(decoy);
        self
    }

    /// The aggressor set.
    pub fn aggressors(&self) -> &[CacheLineAddr] {
        &self.aggressors
    }

    /// Aggressor accesses remaining (decoys excluded: the budget is
    /// aggressor ACT pressure, and decoys ride along for free).
    pub fn remaining(&self) -> u64 {
        self.accesses.saturating_sub(self.issued)
    }

    /// Decoy accesses issued so far by a paced pattern.
    pub fn decoys_issued(&self) -> u64 {
        self.decoys_issued
    }
}

impl Workload for HammerPattern {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        // Each access is a Flush followed by a Read of the same line.
        if let Some(line) = self.pending_read.take() {
            return Some(AccessOp::Read(line));
        }
        // A decoy is due after every `pace_burst` aggressor accesses —
        // and only while aggressor budget remains, so the stream never
        // ends on a useless decoy.
        if self.pace_burst > 0 && self.since_decoy >= self.pace_burst && self.issued < self.accesses
        {
            let decoy = self.decoy.expect("paced() sets a decoy");
            self.since_decoy = 0;
            self.decoys_issued += 1;
            self.pending_read = Some(decoy);
            return Some(AccessOp::Flush(decoy));
        }
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.aggressors[(self.issued % self.aggressors.len() as u64) as usize];
        self.issued += 1;
        self.since_decoy += 1;
        self.pending_read = Some(line);
        Some(AccessOp::Flush(line))
    }
}

/// A Blacksmith-style fuzzed hammer: non-uniform per-aggressor
/// intensities and a shuffled schedule.
///
/// Uniform round-robin patterns are what samplers are tuned for;
/// Blacksmith (Jattke et al.) showed that *frequency-fuzzed* patterns
/// slip past mitigations that survive uniform many-sided hammers. The
/// generator assigns each aggressor a random intensity (1–4 slots per
/// period) and shuffles the period, so trackers see a ragged,
/// phase-shifted access distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzedHammer {
    schedule: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    pending_read: Option<CacheLineAddr>,
}

impl FuzzedHammer {
    /// Generates a fuzzed pattern over `aggressors` from a dedicated
    /// [`DetRng`](hammertime_common::DetRng) fork, taken by value: the
    /// caller hands over a stream derived *only* from configuration
    /// (seed, salt, pattern parameters), never from ambient machine
    /// state, so the same seed produces the same schedule no matter
    /// how many machines were built before this one or on which
    /// worker thread the cell runs.
    ///
    /// # Panics
    ///
    /// Panics if `aggressors` is empty.
    pub fn generate(
        mut rng: hammertime_common::DetRng,
        aggressors: &[CacheLineAddr],
        accesses: u64,
    ) -> FuzzedHammer {
        assert!(
            !aggressors.is_empty(),
            "attack needs at least one aggressor"
        );
        let mut schedule = Vec::new();
        for &a in aggressors {
            let intensity = 1 + rng.below(4);
            for _ in 0..intensity {
                schedule.push(a);
            }
        }
        rng.shuffle(&mut schedule);
        FuzzedHammer {
            schedule,
            accesses,
            issued: 0,
            pending_read: None,
        }
    }

    /// The (shuffled, weighted) per-period schedule.
    pub fn schedule(&self) -> &[CacheLineAddr] {
        &self.schedule
    }
}

impl Workload for FuzzedHammer {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "fuzzed"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if let Some(line) = self.pending_read.take() {
            return Some(AccessOp::Read(line));
        }
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.schedule[(self.issued % self.schedule.len() as u64) as usize];
        self.issued += 1;
        self.pending_read = Some(line);
        Some(AccessOp::Flush(line))
    }
}

/// A hammer issued by a DMA-capable device: same temporal pattern, but
/// the machine routes it around the cache and the PMU (no flushes
/// needed — DMA always reaches DRAM).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DmaHammer {
    aggressors: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    device: u32,
}

impl DmaHammer {
    /// A DMA hammer from device `device` over `aggressors`.
    ///
    /// # Panics
    ///
    /// Panics if `aggressors` is empty.
    pub fn new(device: u32, aggressors: Vec<CacheLineAddr>, accesses: u64) -> DmaHammer {
        assert!(
            !aggressors.is_empty(),
            "attack needs at least one aggressor"
        );
        DmaHammer {
            aggressors,
            accesses,
            issued: 0,
            device,
        }
    }
}

impl Workload for DmaHammer {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "dma-hammer"
    }

    fn source(&self) -> RequestSource {
        RequestSource::Dma(self.device)
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.aggressors[(self.issued % self.aggressors.len() as u64) as usize];
        self.issued += 1;
        Some(AccessOp::Read(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut dyn Workload) -> Vec<AccessOp> {
        std::iter::from_fn(|| w.next_op()).collect()
    }

    #[test]
    fn single_sided_alternates_flush_read() {
        let a = CacheLineAddr(10);
        let mut w = HammerPattern::single_sided(a, 3);
        let ops = drain(&mut w);
        assert_eq!(
            ops,
            vec![
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(a),
                AccessOp::Read(a),
            ]
        );
        assert_eq!(w.remaining(), 0);
    }

    #[test]
    fn double_sided_round_robins_both_aggressors() {
        let (a, b) = (CacheLineAddr(1), CacheLineAddr(2));
        let mut w = HammerPattern::double_sided(a, b, 4);
        let reads: Vec<_> = drain(&mut w)
            .into_iter()
            .filter(|o| matches!(o, AccessOp::Read(_)))
            .map(|o| o.line())
            .collect();
        assert_eq!(reads, vec![a, b, a, b]);
    }

    #[test]
    fn many_sided_covers_all_aggressors() {
        let aggs: Vec<CacheLineAddr> = (0..8).map(CacheLineAddr).collect();
        let mut w = HammerPattern::many_sided(aggs.clone(), 16);
        let reads: std::collections::HashSet<_> = drain(&mut w)
            .into_iter()
            .filter(|o| matches!(o, AccessOp::Read(_)))
            .map(|o| o.line())
            .collect();
        assert_eq!(reads.len(), 8);
        assert_eq!(w.name(), "many-sided");
    }

    #[test]
    fn paced_pattern_inserts_decoys() {
        let a = CacheLineAddr(1);
        let decoy = CacheLineAddr(99);
        let mut w = HammerPattern::single_sided(a, 9).paced(2, decoy);
        let reads: Vec<_> = drain(&mut w)
            .into_iter()
            .filter(|o| matches!(o, AccessOp::Read(_)))
            .map(|o| o.line())
            .collect();
        // A decoy follows every second aggressor access; the 9
        // aggressor accesses are all delivered on top.
        assert_eq!(reads.iter().filter(|&&l| l == decoy).count(), 4);
        assert_eq!(reads.iter().filter(|&&l| l == a).count(), 9);
        assert_eq!(w.name(), "paced");
    }

    #[test]
    fn paced_decoys_excluded_from_aggressor_budget() {
        // Regression: decoys used to consume the access budget, so a
        // paced pattern delivered fewer aggressor ACTs than an unpaced
        // one and remaining() conflated pending decoys with pending
        // aggressor pressure.
        let (a, b) = (CacheLineAddr(1), CacheLineAddr(3));
        let decoy = CacheLineAddr(77);
        let accesses = 30;
        let mut paced = HammerPattern::double_sided(a, b, accesses).paced(4, decoy);
        let mut plain = HammerPattern::double_sided(a, b, accesses);
        let aggr_reads = |ops: Vec<AccessOp>| -> Vec<CacheLineAddr> {
            ops.into_iter()
                .filter(|o| matches!(o, AccessOp::Read(_)))
                .map(|o| o.line())
                .filter(|&l| l != decoy)
                .collect()
        };
        assert_eq!(paced.remaining(), accesses);
        let paced_aggr = aggr_reads(drain(&mut paced));
        let plain_aggr = aggr_reads(drain(&mut plain));
        // Same aggressor ACT pressure, in the same order.
        assert_eq!(paced_aggr, plain_aggr);
        assert_eq!(paced_aggr.len() as u64, accesses);
        assert_eq!(paced.remaining(), 0);
        // Decoys were issued, as extras: one per full burst of 4.
        assert_eq!(paced.decoys_issued(), (accesses - 1) / 4);
    }

    #[test]
    fn fuzzed_hammer_is_nonuniform_but_reproducible() {
        use hammertime_common::DetRng;
        let aggressors: Vec<CacheLineAddr> = (0..6).map(|i| CacheLineAddr(i * 10)).collect();
        let w1 = FuzzedHammer::generate(DetRng::new(5), &aggressors, 100);
        let w2 = FuzzedHammer::generate(DetRng::new(5), &aggressors, 100);
        assert_eq!(w1.schedule(), w2.schedule(), "same seed, same pattern");
        // The schedule covers every aggressor with weighted repeats.
        let mut counts = std::collections::HashMap::new();
        for a in w1.schedule() {
            *counts.entry(*a).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 6);
        for c in counts.values() {
            assert!((1..=4).contains(c));
        }
        // Flush+read structure like other hammers.
        let mut w = w1.clone();
        let ops: Vec<_> = std::iter::from_fn(|| w.next_op()).collect();
        assert_eq!(ops.len(), 200);
        assert!(matches!(ops[0], AccessOp::Flush(_)));
        assert!(matches!(ops[1], AccessOp::Read(_)));
    }

    #[test]
    fn dma_hammer_reads_without_flushes() {
        let aggs = vec![CacheLineAddr(1), CacheLineAddr(2)];
        let mut w = DmaHammer::new(3, aggs, 4);
        assert_eq!(w.source(), RequestSource::Dma(3));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 4);
        assert!(ops.iter().all(|o| matches!(o, AccessOp::Read(_))));
    }

    #[test]
    #[should_panic(expected = "at least one aggressor")]
    fn empty_aggressor_set_rejected() {
        let _ = HammerPattern::new("x", vec![], 10);
    }
}
