//! Benign workload generators.
//!
//! Defenses are only deployable if production traffic doesn't pay for
//! them (the paper's "efficient and practical" bar, §4). These
//! generators model the traffic classes the overhead experiments (F2,
//! E9) sweep:
//!
//! - [`StreamWorkload`] — sequential sweeps (bandwidth-bound, loves
//!   bank-level parallelism: the >18% interleaving benefit \[49\]).
//! - [`RandomWorkload`] — uniform random lines (row-buffer hostile).
//! - [`ZipfianWorkload`] — skewed hot-set access (cloud key-value
//!   flavored); its hot rows stress false-positive-prone defenses.
//! - [`RowConflictWorkload`] — adversarially alternates two rows per
//!   bank (worst case for open-page policies, benign analogue of a
//!   hammer's bank-conflict behaviour).

use crate::ops::{AccessOp, Workload};
use hammertime_common::{CacheLineAddr, DetRng};

/// Sequential sweep over an arena of lines.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    arena: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    write_every: u64,
}

impl StreamWorkload {
    /// Sweeps `arena` in order for `accesses` operations; every
    /// `write_every`-th access is a store (0 = read-only).
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty.
    pub fn new(arena: Vec<CacheLineAddr>, accesses: u64, write_every: u64) -> StreamWorkload {
        assert!(!arena.is_empty());
        StreamWorkload {
            arena,
            accesses,
            issued: 0,
            write_every,
        }
    }
}

impl Workload for StreamWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.arena[(self.issued % self.arena.len() as u64) as usize];
        let op = if self.write_every > 0 && self.issued % self.write_every == self.write_every - 1 {
            AccessOp::Write(line, (self.issued & 0xFF) as u8)
        } else {
            AccessOp::Read(line)
        };
        self.issued += 1;
        Some(op)
    }
}

/// Uniform random access over an arena.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    arena: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    write_ratio: f64,
    rng: DetRng,
}

impl RandomWorkload {
    /// Uniform random reads/writes; `write_ratio` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty.
    pub fn new(
        arena: Vec<CacheLineAddr>,
        accesses: u64,
        write_ratio: f64,
        rng: DetRng,
    ) -> RandomWorkload {
        assert!(!arena.is_empty());
        RandomWorkload {
            arena,
            accesses,
            issued: 0,
            write_ratio,
            rng,
        }
    }
}

impl Workload for RandomWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        self.issued += 1;
        let line = *self.rng.pick(&self.arena);
        Some(if self.rng.chance(self.write_ratio) {
            AccessOp::Write(line, 0xAB)
        } else {
            AccessOp::Read(line)
        })
    }
}

/// Zipf-distributed access over an arena (rank 1 hottest).
#[derive(Debug, Clone)]
pub struct ZipfianWorkload {
    arena: Vec<CacheLineAddr>,
    cdf: Vec<f64>,
    accesses: u64,
    issued: u64,
    rng: DetRng,
}

impl ZipfianWorkload {
    /// Builds a Zipf(`theta`) sampler over `arena` (`theta` ~ 0.99 for
    /// YCSB-like skew).
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty or `theta < 0`.
    pub fn new(
        arena: Vec<CacheLineAddr>,
        accesses: u64,
        theta: f64,
        rng: DetRng,
    ) -> ZipfianWorkload {
        assert!(!arena.is_empty() && theta >= 0.0);
        let mut weights: Vec<f64> = (1..=arena.len())
            .map(|k| 1.0 / (k as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfianWorkload {
            arena,
            cdf: weights,
            accesses,
            issued: 0,
            rng,
        }
    }
}

impl Workload for ZipfianWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "zipfian"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        self.issued += 1;
        let u = self.rng.unit();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.arena.len() - 1);
        Some(AccessOp::Read(self.arena[idx]))
    }
}

/// Alternates two conflicting lines (different rows, same bank).
///
/// The experiment layer picks the line pair; alternation plus the
/// per-access flush forces an ACT per access without being an attack —
/// this is the benign worst case for row-buffer locality.
#[derive(Debug, Clone)]
pub struct RowConflictWorkload {
    pair: [CacheLineAddr; 2],
    accesses: u64,
    issued: u64,
    pending_read: Option<CacheLineAddr>,
}

impl RowConflictWorkload {
    /// Alternates `a` and `b` for `accesses` flush+read pairs.
    pub fn new(a: CacheLineAddr, b: CacheLineAddr, accesses: u64) -> RowConflictWorkload {
        RowConflictWorkload {
            pair: [a, b],
            accesses,
            issued: 0,
            pending_read: None,
        }
    }
}

impl Workload for RowConflictWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "row-conflict"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if let Some(line) = self.pending_read.take() {
            return Some(AccessOp::Read(line));
        }
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.pair[(self.issued % 2) as usize];
        self.issued += 1;
        self.pending_read = Some(line);
        Some(AccessOp::Flush(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(n: u64) -> Vec<CacheLineAddr> {
        (0..n).map(CacheLineAddr).collect()
    }

    fn drain(w: &mut dyn Workload) -> Vec<AccessOp> {
        std::iter::from_fn(|| w.next_op()).collect()
    }

    #[test]
    fn stream_sweeps_in_order_with_writes() {
        let mut w = StreamWorkload::new(arena(4), 8, 4);
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 8);
        assert_eq!(ops[0], AccessOp::Read(CacheLineAddr(0)));
        assert_eq!(ops[1], AccessOp::Read(CacheLineAddr(1)));
        assert!(matches!(ops[3], AccessOp::Write(_, _)));
        assert!(matches!(ops[7], AccessOp::Write(_, _)));
        assert_eq!(ops[4], AccessOp::Read(CacheLineAddr(0)), "wraps around");
    }

    #[test]
    fn random_respects_write_ratio_and_arena() {
        let a = arena(16);
        let mut w = RandomWorkload::new(a.clone(), 2000, 0.25, DetRng::new(1));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 2000);
        let writes = ops
            .iter()
            .filter(|o| matches!(o, AccessOp::Write(_, _)))
            .count();
        assert!((350..650).contains(&writes), "write ratio off: {writes}");
        assert!(ops.iter().all(|o| a.contains(&o.line())));
    }

    #[test]
    fn zipfian_is_skewed_toward_rank_one() {
        let a = arena(64);
        let mut w = ZipfianWorkload::new(a, 10_000, 0.99, DetRng::new(2));
        let mut counts = std::collections::HashMap::new();
        for op in drain(&mut w) {
            *counts.entry(op.line()).or_insert(0u64) += 1;
        }
        let hottest = counts[&CacheLineAddr(0)];
        let coldest = counts.get(&CacheLineAddr(63)).copied().unwrap_or(0);
        assert!(
            hottest > coldest * 5,
            "zipf skew missing: hot={hottest} cold={coldest}"
        );
    }

    #[test]
    fn zipfian_theta_zero_is_uniform_ish() {
        let a = arena(4);
        let mut w = ZipfianWorkload::new(a, 8_000, 0.0, DetRng::new(3));
        let mut counts = std::collections::HashMap::new();
        for op in drain(&mut w) {
            *counts.entry(op.line()).or_insert(0u64) += 1;
        }
        for (_, c) in counts {
            assert!(
                (1_600..2_400).contains(&c),
                "uniform expectation violated: {c}"
            );
        }
    }

    #[test]
    fn row_conflict_alternates_with_flushes() {
        let (a, b) = (CacheLineAddr(1), CacheLineAddr(2));
        let mut w = RowConflictWorkload::new(a, b, 4);
        let ops = drain(&mut w);
        assert_eq!(
            ops,
            vec![
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(b),
                AccessOp::Read(b),
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(b),
                AccessOp::Read(b),
            ]
        );
    }
}
