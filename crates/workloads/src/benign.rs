//! Benign workload generators.
//!
//! Defenses are only deployable if production traffic doesn't pay for
//! them (the paper's "efficient and practical" bar, §4). These
//! generators model the traffic classes the overhead experiments (F2,
//! E9) sweep:
//!
//! - [`StreamWorkload`] — sequential sweeps (bandwidth-bound, loves
//!   bank-level parallelism: the >18% interleaving benefit \[49\]).
//! - [`RandomWorkload`] — uniform random lines (row-buffer hostile).
//! - [`ZipfianWorkload`] — skewed hot-set access (cloud key-value
//!   flavored); its hot rows stress false-positive-prone defenses.
//! - [`RowConflictWorkload`] — adversarially alternates two rows per
//!   bank (worst case for open-page policies, benign analogue of a
//!   hammer's bank-conflict behaviour).

use crate::ops::{AccessOp, Workload};
use hammertime_common::{CacheLineAddr, DetRng, Error, Result};
use serde::{Deserialize, Serialize};

/// A serializable mid-stream snapshot of a benign workload, so a
/// migrating tenant can cross a process boundary (the fleet worker
/// protocol) and resume its stream bit-exactly.
///
/// Floating-point parameters travel as IEEE-754 bit patterns and RNG
/// state as raw words, so the restored generator continues the
/// *identical* draw sequence — the fleet determinism contract demands
/// byte-equal output whether a tenant migrated in-process or over a
/// pipe. RNG state is a `Vec` rather than an array purely for codec
/// reasons; [`WorkloadSnapshot::restore`] length-checks it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSnapshot {
    /// A [`StreamWorkload`] mid-sweep.
    Stream {
        /// Lines swept, in order.
        arena: Vec<CacheLineAddr>,
        /// Total operations to issue.
        accesses: u64,
        /// Operations already issued.
        issued: u64,
        /// Store cadence (0 = read-only).
        write_every: u64,
    },
    /// A [`RandomWorkload`] mid-stream.
    Random {
        /// Candidate lines.
        arena: Vec<CacheLineAddr>,
        /// Total operations to issue.
        accesses: u64,
        /// Operations already issued.
        issued: u64,
        /// `write_ratio` as IEEE-754 bits.
        write_ratio_bits: u64,
        /// Raw RNG state words (always 4).
        rng: Vec<u64>,
    },
    /// A [`ZipfianWorkload`] mid-stream.
    Zipfian {
        /// Candidate lines, rank order.
        arena: Vec<CacheLineAddr>,
        /// Precomputed CDF as IEEE-754 bits (the constructor's `theta`
        /// is not retained, so the CDF itself travels).
        cdf_bits: Vec<u64>,
        /// Total operations to issue.
        accesses: u64,
        /// Operations already issued.
        issued: u64,
        /// Raw RNG state words (always 4).
        rng: Vec<u64>,
    },
}

fn rng_state_words(rng: &DetRng) -> Vec<u64> {
    rng.state().to_vec()
}

fn rng_from_words(words: &[u64], what: &str) -> Result<DetRng> {
    let state: [u64; 4] = words.try_into().map_err(|_| {
        Error::Config(format!(
            "{what} snapshot carries {} RNG state words, want 4",
            words.len()
        ))
    })?;
    if state.iter().all(|&w| w == 0) {
        return Err(Error::Config(format!(
            "{what} snapshot carries the all-zero RNG state"
        )));
    }
    Ok(DetRng::from_state(state))
}

impl WorkloadSnapshot {
    /// Rebuilds the boxed workload this snapshot captured, positioned
    /// to continue the identical operation stream.
    ///
    /// Structured `Err` (never a panic) on a malformed snapshot — an
    /// empty arena or a wrong-length/all-zero RNG state, which a
    /// tampered or hand-built wire message could carry.
    pub fn restore(&self) -> Result<Box<dyn Workload>> {
        match self {
            WorkloadSnapshot::Stream {
                arena,
                accesses,
                issued,
                write_every,
            } => {
                if arena.is_empty() {
                    return Err(Error::Config("stream snapshot has an empty arena".into()));
                }
                Ok(Box::new(StreamWorkload {
                    arena: arena.clone(),
                    accesses: *accesses,
                    issued: *issued,
                    write_every: *write_every,
                }))
            }
            WorkloadSnapshot::Random {
                arena,
                accesses,
                issued,
                write_ratio_bits,
                rng,
            } => {
                if arena.is_empty() {
                    return Err(Error::Config("random snapshot has an empty arena".into()));
                }
                Ok(Box::new(RandomWorkload {
                    arena: arena.clone(),
                    accesses: *accesses,
                    issued: *issued,
                    write_ratio: f64::from_bits(*write_ratio_bits),
                    rng: rng_from_words(rng, "random")?,
                }))
            }
            WorkloadSnapshot::Zipfian {
                arena,
                cdf_bits,
                accesses,
                issued,
                rng,
            } => {
                if arena.is_empty() {
                    return Err(Error::Config("zipfian snapshot has an empty arena".into()));
                }
                if cdf_bits.len() != arena.len() {
                    return Err(Error::Config(format!(
                        "zipfian snapshot CDF length {} does not match arena length {}",
                        cdf_bits.len(),
                        arena.len()
                    )));
                }
                Ok(Box::new(ZipfianWorkload {
                    arena: arena.clone(),
                    cdf: cdf_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                    accesses: *accesses,
                    issued: *issued,
                    rng: rng_from_words(rng, "zipfian")?,
                }))
            }
        }
    }
}

/// Sequential sweep over an arena of lines.
#[derive(Debug, Clone)]
pub struct StreamWorkload {
    arena: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    write_every: u64,
}

impl StreamWorkload {
    /// Sweeps `arena` in order for `accesses` operations; every
    /// `write_every`-th access is a store (0 = read-only).
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty.
    pub fn new(arena: Vec<CacheLineAddr>, accesses: u64, write_every: u64) -> StreamWorkload {
        assert!(!arena.is_empty());
        StreamWorkload {
            arena,
            accesses,
            issued: 0,
            write_every,
        }
    }
}

impl Workload for StreamWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn snapshot(&self) -> Option<WorkloadSnapshot> {
        Some(WorkloadSnapshot::Stream {
            arena: self.arena.clone(),
            accesses: self.accesses,
            issued: self.issued,
            write_every: self.write_every,
        })
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.arena[(self.issued % self.arena.len() as u64) as usize];
        let op = if self.write_every > 0 && self.issued % self.write_every == self.write_every - 1 {
            AccessOp::Write(line, (self.issued & 0xFF) as u8)
        } else {
            AccessOp::Read(line)
        };
        self.issued += 1;
        Some(op)
    }
}

/// Uniform random access over an arena.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    arena: Vec<CacheLineAddr>,
    accesses: u64,
    issued: u64,
    write_ratio: f64,
    rng: DetRng,
}

impl RandomWorkload {
    /// Uniform random reads/writes; `write_ratio` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty.
    pub fn new(
        arena: Vec<CacheLineAddr>,
        accesses: u64,
        write_ratio: f64,
        rng: DetRng,
    ) -> RandomWorkload {
        assert!(!arena.is_empty());
        RandomWorkload {
            arena,
            accesses,
            issued: 0,
            write_ratio,
            rng,
        }
    }
}

impl Workload for RandomWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn snapshot(&self) -> Option<WorkloadSnapshot> {
        Some(WorkloadSnapshot::Random {
            arena: self.arena.clone(),
            accesses: self.accesses,
            issued: self.issued,
            write_ratio_bits: self.write_ratio.to_bits(),
            rng: rng_state_words(&self.rng),
        })
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        self.issued += 1;
        let line = *self.rng.pick(&self.arena);
        Some(if self.rng.chance(self.write_ratio) {
            AccessOp::Write(line, 0xAB)
        } else {
            AccessOp::Read(line)
        })
    }
}

/// Zipf-distributed access over an arena (rank 1 hottest).
#[derive(Debug, Clone)]
pub struct ZipfianWorkload {
    arena: Vec<CacheLineAddr>,
    cdf: Vec<f64>,
    accesses: u64,
    issued: u64,
    rng: DetRng,
}

impl ZipfianWorkload {
    /// Builds a Zipf(`theta`) sampler over `arena` (`theta` ~ 0.99 for
    /// YCSB-like skew).
    ///
    /// # Panics
    ///
    /// Panics if `arena` is empty or `theta < 0`.
    pub fn new(
        arena: Vec<CacheLineAddr>,
        accesses: u64,
        theta: f64,
        rng: DetRng,
    ) -> ZipfianWorkload {
        assert!(!arena.is_empty() && theta >= 0.0);
        let mut weights: Vec<f64> = (1..=arena.len())
            .map(|k| 1.0 / (k as f64).powf(theta))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfianWorkload {
            arena,
            cdf: weights,
            accesses,
            issued: 0,
            rng,
        }
    }
}

impl Workload for ZipfianWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn snapshot(&self) -> Option<WorkloadSnapshot> {
        Some(WorkloadSnapshot::Zipfian {
            arena: self.arena.clone(),
            cdf_bits: self.cdf.iter().map(|c| c.to_bits()).collect(),
            accesses: self.accesses,
            issued: self.issued,
            rng: rng_state_words(&self.rng),
        })
    }

    fn name(&self) -> &'static str {
        "zipfian"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if self.issued >= self.accesses {
            return None;
        }
        self.issued += 1;
        let u = self.rng.unit();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.arena.len() - 1);
        Some(AccessOp::Read(self.arena[idx]))
    }
}

/// Alternates two conflicting lines (different rows, same bank).
///
/// The experiment layer picks the line pair; alternation plus the
/// per-access flush forces an ACT per access without being an attack —
/// this is the benign worst case for row-buffer locality.
#[derive(Debug, Clone)]
pub struct RowConflictWorkload {
    pair: [CacheLineAddr; 2],
    accesses: u64,
    issued: u64,
    pending_read: Option<CacheLineAddr>,
}

impl RowConflictWorkload {
    /// Alternates `a` and `b` for `accesses` flush+read pairs.
    pub fn new(a: CacheLineAddr, b: CacheLineAddr, accesses: u64) -> RowConflictWorkload {
        RowConflictWorkload {
            pair: [a, b],
            accesses,
            issued: 0,
            pending_read: None,
        }
    }
}

impl Workload for RowConflictWorkload {
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn name(&self) -> &'static str {
        "row-conflict"
    }

    fn next_op(&mut self) -> Option<AccessOp> {
        if let Some(line) = self.pending_read.take() {
            return Some(AccessOp::Read(line));
        }
        if self.issued >= self.accesses {
            return None;
        }
        let line = self.pair[(self.issued % 2) as usize];
        self.issued += 1;
        self.pending_read = Some(line);
        Some(AccessOp::Flush(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena(n: u64) -> Vec<CacheLineAddr> {
        (0..n).map(CacheLineAddr).collect()
    }

    fn drain(w: &mut dyn Workload) -> Vec<AccessOp> {
        std::iter::from_fn(|| w.next_op()).collect()
    }

    #[test]
    fn stream_sweeps_in_order_with_writes() {
        let mut w = StreamWorkload::new(arena(4), 8, 4);
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 8);
        assert_eq!(ops[0], AccessOp::Read(CacheLineAddr(0)));
        assert_eq!(ops[1], AccessOp::Read(CacheLineAddr(1)));
        assert!(matches!(ops[3], AccessOp::Write(_, _)));
        assert!(matches!(ops[7], AccessOp::Write(_, _)));
        assert_eq!(ops[4], AccessOp::Read(CacheLineAddr(0)), "wraps around");
    }

    #[test]
    fn random_respects_write_ratio_and_arena() {
        let a = arena(16);
        let mut w = RandomWorkload::new(a.clone(), 2000, 0.25, DetRng::new(1));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 2000);
        let writes = ops
            .iter()
            .filter(|o| matches!(o, AccessOp::Write(_, _)))
            .count();
        assert!((350..650).contains(&writes), "write ratio off: {writes}");
        assert!(ops.iter().all(|o| a.contains(&o.line())));
    }

    #[test]
    fn zipfian_is_skewed_toward_rank_one() {
        let a = arena(64);
        let mut w = ZipfianWorkload::new(a, 10_000, 0.99, DetRng::new(2));
        let mut counts = std::collections::HashMap::new();
        for op in drain(&mut w) {
            *counts.entry(op.line()).or_insert(0u64) += 1;
        }
        let hottest = counts[&CacheLineAddr(0)];
        let coldest = counts.get(&CacheLineAddr(63)).copied().unwrap_or(0);
        assert!(
            hottest > coldest * 5,
            "zipf skew missing: hot={hottest} cold={coldest}"
        );
    }

    #[test]
    fn zipfian_theta_zero_is_uniform_ish() {
        let a = arena(4);
        let mut w = ZipfianWorkload::new(a, 8_000, 0.0, DetRng::new(3));
        let mut counts = std::collections::HashMap::new();
        for op in drain(&mut w) {
            *counts.entry(op.line()).or_insert(0u64) += 1;
        }
        for (_, c) in counts {
            assert!(
                (1_600..2_400).contains(&c),
                "uniform expectation violated: {c}"
            );
        }
    }

    /// Runs `w` for `k` ops, snapshots, and asserts the restored copy
    /// and the original produce identical remaining streams.
    fn assert_snapshot_fidelity(mut w: Box<dyn Workload>, k: usize) {
        for _ in 0..k {
            w.next_op().expect("workload ended before snapshot point");
        }
        let snap = w.snapshot().expect("benign workload must snapshot");
        // Round-trip through the wire encoding, as the fleet would.
        let wire = serde_json::to_string(&snap).unwrap();
        let back: WorkloadSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(snap, back);
        let mut restored = back.restore().unwrap();
        assert_eq!(restored.name(), w.name());
        loop {
            let a = w.next_op();
            let b = restored.next_op();
            assert_eq!(a, b, "streams diverged after restore");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshots_resume_streams_bit_exactly() {
        let a = arena(16);
        assert_snapshot_fidelity(Box::new(StreamWorkload::new(a.clone(), 200, 3)), 37);
        assert_snapshot_fidelity(
            Box::new(RandomWorkload::new(a.clone(), 200, 0.31, DetRng::new(5))),
            37,
        );
        assert_snapshot_fidelity(
            Box::new(ZipfianWorkload::new(a, 200, 0.99, DetRng::new(6))),
            37,
        );
    }

    #[test]
    fn snapshot_at_zero_ops_matches_fresh_workload() {
        assert_snapshot_fidelity(Box::new(StreamWorkload::new(arena(4), 20, 0)), 0);
    }

    #[test]
    fn malformed_snapshots_are_structured_errors() {
        let empty_arena = WorkloadSnapshot::Stream {
            arena: vec![],
            accesses: 10,
            issued: 0,
            write_every: 0,
        };
        assert!(empty_arena.restore().is_err());

        let bad_rng = WorkloadSnapshot::Random {
            arena: arena(4),
            accesses: 10,
            issued: 0,
            write_ratio_bits: 0.5f64.to_bits(),
            rng: vec![1, 2, 3],
        };
        assert!(bad_rng.restore().is_err());

        let zero_rng = WorkloadSnapshot::Random {
            arena: arena(4),
            accesses: 10,
            issued: 0,
            write_ratio_bits: 0.5f64.to_bits(),
            rng: vec![0, 0, 0, 0],
        };
        assert!(zero_rng.restore().is_err());

        let bad_cdf = WorkloadSnapshot::Zipfian {
            arena: arena(4),
            cdf_bits: vec![0; 3],
            accesses: 10,
            issued: 0,
            rng: vec![1, 2, 3, 4],
        };
        assert!(bad_cdf.restore().is_err());
    }

    #[test]
    fn row_conflict_alternates_with_flushes() {
        let (a, b) = (CacheLineAddr(1), CacheLineAddr(2));
        let mut w = RowConflictWorkload::new(a, b, 4);
        let ops = drain(&mut w);
        assert_eq!(
            ops,
            vec![
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(b),
                AccessOp::Read(b),
                AccessOp::Flush(a),
                AccessOp::Read(a),
                AccessOp::Flush(b),
                AccessOp::Read(b),
            ]
        );
    }
}
