//! Attack and benign workload generators for the `hammertime`
//! workspace.
//!
//! - [`ops`]: the operation vocabulary and [`ops::Workload`]
//!   interface.
//! - [`attack`]: single-/double-/many-sided hammers, pacing evasion,
//!   and DMA-based hammering (paper §1–3).
//! - [`benign`]: stream/random/zipfian/row-conflict production traffic
//!   for overhead measurement.
//! - [`trace`]: workload record/replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod benign;
pub mod ops;
pub mod trace;

pub use attack::{DmaHammer, FuzzedHammer, HammerPattern};
pub use benign::{
    RandomWorkload, RowConflictWorkload, StreamWorkload, WorkloadSnapshot, ZipfianWorkload,
};
pub use ops::{AccessOp, Workload};
pub use trace::{Trace, TraceReplayer};
