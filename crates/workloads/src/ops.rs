//! Access operations and the workload interface.
//!
//! Workloads are iterators over [`AccessOp`]s against physical cache
//! lines. Attack generators emit the flush+access patterns Rowhammer
//! needs (every access must reach DRAM, paper §2.1); benign generators
//! model the production traffic defenses must not tax.

use hammertime_common::{CacheLineAddr, RequestSource};
use serde::{Deserialize, Serialize};

/// One operation a workload asks the machine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOp {
    /// Load a cache line.
    Read(CacheLineAddr),
    /// Store to a cache line (the payload byte fills the line).
    Write(CacheLineAddr, u8),
    /// clflush the line (so the next access misses).
    Flush(CacheLineAddr),
}

impl AccessOp {
    /// The line this operation touches.
    pub fn line(&self) -> CacheLineAddr {
        match *self {
            AccessOp::Read(l) | AccessOp::Write(l, _) | AccessOp::Flush(l) => l,
        }
    }

    /// Whether this operation is a memory access (not a flush).
    pub fn is_access(&self) -> bool {
        !matches!(self, AccessOp::Flush(_))
    }
}

/// A finite or unbounded stream of operations.
///
/// `Send` is a supertrait so a boxed workload — and therefore a
/// detached tenant carrying one — can cross threads: the fleet layer
/// migrates tenants between machines owned by different worker
/// threads. Every generator here holds only owned data (or shared
/// references to `Sync` traces), so the bound costs nothing.
pub trait Workload: Send {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Who issues this stream's accesses — CPU core traffic flows
    /// through the cache and PMU; DMA traffic bypasses both (§1).
    fn source(&self) -> RequestSource {
        RequestSource::Core(0)
    }

    /// Produces the next operation, or `None` when finished.
    fn next_op(&mut self) -> Option<AccessOp>;

    /// A boxed deep copy of this workload mid-stream, for machine
    /// checkpointing. `None` (the default) marks the workload as
    /// non-checkpointable — e.g. replayers borrowing external state —
    /// and makes `Machine::checkpoint` fail rather than silently fork
    /// a shared stream.
    fn box_clone(&self) -> Option<Box<dyn Workload>> {
        None
    }

    /// A serializable mid-stream snapshot, for tenants that migrate
    /// *between processes* (the fleet worker protocol). `None` (the
    /// default) marks the workload as wire-opaque; the fleet layer
    /// turns that into a structured error rather than dropping the
    /// tenant's remaining stream.
    fn snapshot(&self) -> Option<crate::benign::WorkloadSnapshot> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_line_extraction() {
        let l = CacheLineAddr(9);
        assert_eq!(AccessOp::Read(l).line(), l);
        assert_eq!(AccessOp::Write(l, 7).line(), l);
        assert_eq!(AccessOp::Flush(l).line(), l);
        assert!(AccessOp::Read(l).is_access());
        assert!(AccessOp::Write(l, 0).is_access());
        assert!(!AccessOp::Flush(l).is_access());
    }
}
